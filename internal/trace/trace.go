// Package trace provides the per-process counters that tie the running
// system back to the paper's analytical model (§5.2): messages sent,
// bytes sent, application payload bytes, layer-event dispatches, consensus
// instances, and batch sizes.
//
// Counters are written by engines on their own single-threaded event loop
// and read by harnesses after quiescence (simulation) or via Snapshot
// (real time), so reads under concurrency use atomic loads.
package trace

import (
	"fmt"
	"sync/atomic"
)

// Counters accumulates the measurable activity of one process. The zero
// value is ready to use.
type Counters struct {
	// MsgsSent counts point-to-point sends handed to the transport.
	MsgsSent atomic.Int64
	// BytesSent counts the total wire bytes (headers included) handed to
	// the transport.
	BytesSent atomic.Int64
	// PayloadBytesSent counts only application payload bytes inside sends,
	// the l-denominated quantity of §5.2.2.
	PayloadBytesSent atomic.Int64
	// MsgsRecv counts messages received from the transport.
	MsgsRecv atomic.Int64
	// BytesRecv counts wire bytes received.
	BytesRecv atomic.Int64
	// Dispatches counts intra-stack event dispatches (layer crossings).
	// In the modular stack every inter-module event costs a dispatch; the
	// monolithic engine performs essentially one per network message.
	Dispatches atomic.Int64
	// ConsensusStarted counts consensus instances begun locally.
	ConsensusStarted atomic.Int64
	// ConsensusDecided counts consensus instances decided locally.
	ConsensusDecided atomic.Int64
	// Rounds counts consensus round changes beyond the first round
	// (0 in good runs: a new round starts only on suspicion).
	Rounds atomic.Int64
	// ABCast counts application messages accepted by Abcast locally.
	ABCast atomic.Int64
	// ADeliver counts application messages adelivered locally.
	ADeliver atomic.Int64
	// BatchedMsgs sums the sizes of decided batches (numerator of the
	// average M messages ordered per consensus).
	BatchedMsgs atomic.Int64
	// SenderBatches counts sender-side batches sealed by the batching
	// accumulator and handed to the ordering path (0 with batching
	// disabled).
	SenderBatches atomic.Int64
	// SenderBatchedMsgs sums the application messages carried by those
	// sender-side batches (numerator of the msgs/batch average).
	SenderBatchedMsgs atomic.Int64
	// ConcurrentInstances sums, over every consensus proposal this process
	// issued, the number of its own in-flight (proposed, not yet decided)
	// instances right after the proposal — the numerator of the average
	// pipeline depth. Sequential operation contributes exactly 1 per
	// proposal. PipelineProposals counts those samples (the denominator);
	// it differs from ConsensusStarted because a proposal for an instance
	// whose initial value another process already supplied still occupies
	// a window slot without "starting" the instance.
	ConcurrentInstances atomic.Int64
	// PipelineProposals counts the proposals sampled into
	// ConcurrentInstances.
	PipelineProposals atomic.Int64
	// PipelineDepthObserved is the high-water mark of concurrently
	// in-flight consensus instances at this process (1 in sequential
	// operation; up to engine.Config.PipelineDepth with pipelining).
	PipelineDepthObserved atomic.Int64
	// Retransmissions counts recovery-path sends (decision refetch,
	// rbcast relay duplicates suppressed, etc.).
	Retransmissions atomic.Int64
	// StreamDropped counts adeliveries discarded by a delivery-stream
	// subscriber running the drop overflow policy — nonzero means the
	// application could not keep up with the ordering layer.
	StreamDropped atomic.Int64
	// Recoveries counts engine starts that replayed a write-ahead log
	// (crash-recovery restarts).
	Recoveries atomic.Int64
	// RecoveryReplayedMsgs counts adelivered messages reconstructed from
	// the local log during restart (not re-delivered to the application).
	RecoveryReplayedMsgs atomic.Int64
	// RecoveryFetchedMsgs counts messages in decisions fetched from live
	// peers during state-transfer catch-up (these are adelivered, since the
	// crashed incarnation never saw them).
	RecoveryFetchedMsgs atomic.Int64
	// RecoveryNanos accumulates the time from recovery start to catch-up
	// completion, in nanoseconds of the driver's clock (virtual time under
	// simulation).
	RecoveryNanos atomic.Int64
	// Applied counts delivered application messages applied to the local
	// state machine (internal/rsm; 0 when no state machine is attached).
	Applied atomic.Int64
	// SnapshotsTaken counts state machine snapshots persisted locally at
	// instance boundaries.
	SnapshotsTaken atomic.Int64
	// SnapshotInstalls counts peer snapshots installed during recovery
	// (the far-behind path that replaces per-instance catch-up).
	SnapshotInstalls atomic.Int64
	// SnapshotInstallNanos accumulates the time from the first snapshot
	// chunk request to install completion, in driver-clock nanoseconds.
	SnapshotInstallNanos atomic.Int64
	// WalTruncatedSegments counts write-ahead-log segments freed below the
	// snapshot horizon.
	WalTruncatedSegments atomic.Int64
	// DroppedByFault counts transmission attempts discarded by an injected
	// link fault (partition or probabilistic drop), charged to the sender.
	// The simulated link retries dropped transmissions, so one message can
	// contribute several drops before it finally arrives.
	DroppedByFault atomic.Int64
	// DupedByFault counts extra deliveries injected by a link duplication
	// fault, charged to the sender.
	DupedByFault atomic.Int64
	// ReorderedByFault counts messages given a bounded extra skew by a link
	// reordering fault, charged to the sender.
	ReorderedByFault atomic.Int64
	// PartitionNanos accumulates, per sender, the virtual time its outbound
	// directed links spent fully partitioned (summed over links; a closed
	// window is accounted when it ends). PartitionSecs reports it in
	// seconds.
	PartitionNanos atomic.Int64
	// OrderedBytes counts the wire bytes of ordering-path frames this
	// process sent: consensus proposals/estimates/acks/nacks and decision
	// dissemination. Under digest ordering these frames carry compact
	// descriptors, so OrderedBytes stops scaling with payload size — the
	// ordered-vs-disseminated split of the `-fig digest` benchmark.
	OrderedBytes atomic.Int64
	// DisseminatedBytes counts the wire bytes of payload dissemination
	// frames this process sent (diffusion/announce frames, relay wrapping
	// included, and payload-fetch re-serves), multiplied by fanout.
	DisseminatedBytes atomic.Int64
	// PayloadFetches counts decided-but-not-resident repairs: a decided
	// descriptor whose payload had to be refetched from a live holder
	// before adelivery (digest ordering only).
	PayloadFetches atomic.Int64
	// PayloadFetchNanos accumulates the time adelivery was blocked waiting
	// for a non-resident payload, from the blocking decide to residency,
	// in driver-clock nanoseconds.
	PayloadFetchNanos atomic.Int64
	// ConfigChanges counts membership changes applied locally: a decided
	// add/remove op that passed its epoch check and produced a new view.
	ConfigChanges atomic.Int64
	// PayloadsRetired counts undelivered payload-store entries dropped at
	// a membership remove boundary: announced batches of a removed origin
	// that no surviving proposal will ever order (digest ordering only).
	PayloadsRetired atomic.Int64
}

// Snapshot is an immutable copy of the counters at one instant.
type Snapshot struct {
	MsgsSent              int64
	BytesSent             int64
	PayloadBytesSent      int64
	MsgsRecv              int64
	BytesRecv             int64
	Dispatches            int64
	ConsensusStarted      int64
	ConsensusDecided      int64
	Rounds                int64
	ABCast                int64
	ADeliver              int64
	BatchedMsgs           int64
	SenderBatches         int64
	SenderBatchedMsgs     int64
	ConcurrentInstances   int64
	PipelineProposals     int64
	PipelineDepthObserved int64
	Retransmissions       int64
	StreamDropped         int64
	Recoveries            int64
	RecoveryReplayedMsgs  int64
	RecoveryFetchedMsgs   int64
	RecoveryNanos         int64
	Applied               int64
	SnapshotsTaken        int64
	SnapshotInstalls      int64
	SnapshotInstallNanos  int64
	WalTruncatedSegments  int64
	DroppedByFault        int64
	DupedByFault          int64
	ReorderedByFault      int64
	PartitionNanos        int64
	OrderedBytes          int64
	DisseminatedBytes     int64
	PayloadFetches        int64
	PayloadFetchNanos     int64
	ConfigChanges         int64
	PayloadsRetired       int64
}

// Snapshot returns a consistent-enough copy for reporting (each field is
// individually atomic; cross-field exactness is only guaranteed at
// quiescence).
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		MsgsSent:              c.MsgsSent.Load(),
		BytesSent:             c.BytesSent.Load(),
		PayloadBytesSent:      c.PayloadBytesSent.Load(),
		MsgsRecv:              c.MsgsRecv.Load(),
		BytesRecv:             c.BytesRecv.Load(),
		Dispatches:            c.Dispatches.Load(),
		ConsensusStarted:      c.ConsensusStarted.Load(),
		ConsensusDecided:      c.ConsensusDecided.Load(),
		Rounds:                c.Rounds.Load(),
		ABCast:                c.ABCast.Load(),
		ADeliver:              c.ADeliver.Load(),
		BatchedMsgs:           c.BatchedMsgs.Load(),
		SenderBatches:         c.SenderBatches.Load(),
		SenderBatchedMsgs:     c.SenderBatchedMsgs.Load(),
		ConcurrentInstances:   c.ConcurrentInstances.Load(),
		PipelineProposals:     c.PipelineProposals.Load(),
		PipelineDepthObserved: c.PipelineDepthObserved.Load(),
		Retransmissions:       c.Retransmissions.Load(),
		StreamDropped:         c.StreamDropped.Load(),
		Recoveries:            c.Recoveries.Load(),
		RecoveryReplayedMsgs:  c.RecoveryReplayedMsgs.Load(),
		RecoveryFetchedMsgs:   c.RecoveryFetchedMsgs.Load(),
		RecoveryNanos:         c.RecoveryNanos.Load(),
		Applied:               c.Applied.Load(),
		SnapshotsTaken:        c.SnapshotsTaken.Load(),
		SnapshotInstalls:      c.SnapshotInstalls.Load(),
		SnapshotInstallNanos:  c.SnapshotInstallNanos.Load(),
		WalTruncatedSegments:  c.WalTruncatedSegments.Load(),
		DroppedByFault:        c.DroppedByFault.Load(),
		DupedByFault:          c.DupedByFault.Load(),
		ReorderedByFault:      c.ReorderedByFault.Load(),
		PartitionNanos:        c.PartitionNanos.Load(),
		OrderedBytes:          c.OrderedBytes.Load(),
		DisseminatedBytes:     c.DisseminatedBytes.Load(),
		PayloadFetches:        c.PayloadFetches.Load(),
		PayloadFetchNanos:     c.PayloadFetchNanos.Load(),
		ConfigChanges:         c.ConfigChanges.Load(),
		PayloadsRetired:       c.PayloadsRetired.Load(),
	}
}

// Add accumulates another snapshot into s (for group-wide totals).
func (s *Snapshot) Add(o Snapshot) {
	s.MsgsSent += o.MsgsSent
	s.BytesSent += o.BytesSent
	s.PayloadBytesSent += o.PayloadBytesSent
	s.MsgsRecv += o.MsgsRecv
	s.BytesRecv += o.BytesRecv
	s.Dispatches += o.Dispatches
	s.ConsensusStarted += o.ConsensusStarted
	s.ConsensusDecided += o.ConsensusDecided
	s.Rounds += o.Rounds
	s.ABCast += o.ABCast
	s.ADeliver += o.ADeliver
	s.BatchedMsgs += o.BatchedMsgs
	s.SenderBatches += o.SenderBatches
	s.SenderBatchedMsgs += o.SenderBatchedMsgs
	s.ConcurrentInstances += o.ConcurrentInstances
	s.PipelineProposals += o.PipelineProposals
	if o.PipelineDepthObserved > s.PipelineDepthObserved {
		// The high-water mark aggregates as a max, not a sum: the group-wide
		// value is the deepest pipeline any process ran.
		s.PipelineDepthObserved = o.PipelineDepthObserved
	}
	s.Retransmissions += o.Retransmissions
	s.StreamDropped += o.StreamDropped
	s.Recoveries += o.Recoveries
	s.RecoveryReplayedMsgs += o.RecoveryReplayedMsgs
	s.RecoveryFetchedMsgs += o.RecoveryFetchedMsgs
	s.RecoveryNanos += o.RecoveryNanos
	s.Applied += o.Applied
	s.SnapshotsTaken += o.SnapshotsTaken
	s.SnapshotInstalls += o.SnapshotInstalls
	s.SnapshotInstallNanos += o.SnapshotInstallNanos
	s.WalTruncatedSegments += o.WalTruncatedSegments
	s.DroppedByFault += o.DroppedByFault
	s.DupedByFault += o.DupedByFault
	s.ReorderedByFault += o.ReorderedByFault
	s.PartitionNanos += o.PartitionNanos
	s.OrderedBytes += o.OrderedBytes
	s.DisseminatedBytes += o.DisseminatedBytes
	s.PayloadFetches += o.PayloadFetches
	s.PayloadFetchNanos += o.PayloadFetchNanos
	s.ConfigChanges += o.ConfigChanges
	s.PayloadsRetired += o.PayloadsRetired
}

// Stats is a uniform whole-driver snapshot: one Snapshot per process
// plus the group-wide totals. Every driver (real-time group, TCP node,
// simulated cluster) exposes it the same way, so harnesses can compare
// stacks and drivers without caring which one produced the numbers.
type Stats struct {
	// N is the group size.
	N int
	// PerProcess holds one snapshot per process, indexed by ProcessID.
	PerProcess []Snapshot
	// Total is the sum over PerProcess, plus any driver-level activity
	// not attributable to a single process (e.g. drops at a group-wide
	// delivery stream).
	Total Snapshot
}

// AvgBatch returns the measured M: average messages ordered per decided
// consensus instance (0 when nothing decided).
func (s Snapshot) AvgBatch() float64 {
	if s.ConsensusDecided == 0 {
		return 0
	}
	return float64(s.BatchedMsgs) / float64(s.ConsensusDecided)
}

// MsgsPerSenderBatch returns the average number of application messages
// per sealed sender-side batch — the amortization factor bought by
// batching (0 when batching never sealed a batch).
func (s Snapshot) MsgsPerSenderBatch() float64 {
	if s.SenderBatches == 0 {
		return 0
	}
	return float64(s.SenderBatchedMsgs) / float64(s.SenderBatches)
}

// ObserveDepth records one pipeline-depth sample at proposal time: depth
// accumulates into ConcurrentInstances and raises the
// PipelineDepthObserved high-water mark. Engines call it from their
// single-threaded event loop; the CAS loop only defends against harness
// reads racing the update.
func (c *Counters) ObserveDepth(depth int) {
	d := int64(depth)
	c.ConcurrentInstances.Add(d)
	c.PipelineProposals.Add(1)
	for {
		cur := c.PipelineDepthObserved.Load()
		if cur >= d || c.PipelineDepthObserved.CompareAndSwap(cur, d) {
			return
		}
	}
}

// AvgPipelineDepth returns the average number of in-flight consensus
// instances per proposal (1.0 in sequential operation, up to the
// configured pipeline depth under saturation; 0 when nothing proposed).
func (s Snapshot) AvgPipelineDepth() float64 {
	if s.PipelineProposals == 0 {
		return 0
	}
	return float64(s.ConcurrentInstances) / float64(s.PipelineProposals)
}

// HeaderBytesPerMsg returns the protocol overhead on the wire — total
// bytes sent minus application payload bytes — per abcast application
// message. This is the per-message cost of modularity the paper's §5.2.2
// analysis predicts and sender-side batching amortizes; compare the value
// with batching on and off. Meaningful on group-wide totals (ABCast then
// counts each distinct application message once).
func (s Snapshot) HeaderBytesPerMsg() float64 {
	if s.ABCast == 0 {
		return 0
	}
	return float64(s.BytesSent-s.PayloadBytesSent) / float64(s.ABCast)
}

// OrderedBytesPerMsg returns the ordering-path wire bytes spent per
// adelivered application message — the quantity digest ordering collapses
// (a 1000-message batch orders as one ~32-byte descriptor). Meaningful on
// group-wide totals.
func (s Snapshot) OrderedBytesPerMsg() float64 {
	if s.ADeliver == 0 {
		return 0
	}
	return float64(s.OrderedBytes) / float64(s.ADeliver)
}

// DisseminatedBytesPerMsg returns the payload-dissemination wire bytes per
// adelivered application message. Meaningful on group-wide totals.
func (s Snapshot) DisseminatedBytesPerMsg() float64 {
	if s.ADeliver == 0 {
		return 0
	}
	return float64(s.DisseminatedBytes) / float64(s.ADeliver)
}

// String implements fmt.Stringer with the headline counters.
func (s Snapshot) String() string {
	out := fmt.Sprintf("sent=%d (%d B, payload %d B) recv=%d consensus=%d/%d avgM=%.2f dispatches=%d",
		s.MsgsSent, s.BytesSent, s.PayloadBytesSent, s.MsgsRecv,
		s.ConsensusDecided, s.ConsensusStarted, s.AvgBatch(), s.Dispatches)
	if s.SenderBatches > 0 {
		out += fmt.Sprintf(" msgs/batch=%.2f", s.MsgsPerSenderBatch())
	}
	if s.PipelineDepthObserved > 1 {
		out += fmt.Sprintf(" pipeline=%d (avg %.2f)", s.PipelineDepthObserved, s.AvgPipelineDepth())
	}
	if s.StreamDropped > 0 {
		out += fmt.Sprintf(" streamDropped=%d", s.StreamDropped)
	}
	if s.Recoveries > 0 {
		out += fmt.Sprintf(" recoveries=%d (replayed=%d fetched=%d in %.1fms)",
			s.Recoveries, s.RecoveryReplayedMsgs, s.RecoveryFetchedMsgs,
			float64(s.RecoveryNanos)/1e6)
	}
	if s.SnapshotsTaken > 0 || s.SnapshotInstalls > 0 {
		out += fmt.Sprintf(" snapshots{applied=%d taken=%d installed=%d in %.1fms walTrunc=%d}",
			s.Applied, s.SnapshotsTaken, s.SnapshotInstalls,
			float64(s.SnapshotInstallNanos)/1e6, s.WalTruncatedSegments)
	}
	if s.PayloadFetches > 0 {
		out += fmt.Sprintf(" payloadFetches=%d (blocked %.1fms)",
			s.PayloadFetches, float64(s.PayloadFetchNanos)/1e6)
	}
	if s.DroppedByFault > 0 || s.DupedByFault > 0 || s.ReorderedByFault > 0 || s.PartitionNanos > 0 {
		out += fmt.Sprintf(" faults{dropped=%d duped=%d reordered=%d partition=%.2fs}",
			s.DroppedByFault, s.DupedByFault, s.ReorderedByFault, s.PartitionSecs())
	}
	return out
}

// PartitionSecs returns the accumulated outbound-link partition time in
// seconds (the chaos figure's partition-exposure column).
func (s Snapshot) PartitionSecs() float64 {
	return float64(s.PartitionNanos) / 1e9
}
