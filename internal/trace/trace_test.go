package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestSnapshotAndAdd(t *testing.T) {
	var c Counters
	c.MsgsSent.Add(3)
	c.BytesSent.Add(100)
	c.ConsensusDecided.Add(2)
	c.BatchedMsgs.Add(8)

	s := c.Snapshot()
	if s.MsgsSent != 3 || s.BytesSent != 100 {
		t.Fatalf("snapshot: %+v", s)
	}
	if got := s.AvgBatch(); got != 4 {
		t.Fatalf("AvgBatch = %g", got)
	}

	var total Snapshot
	total.Add(s)
	total.Add(s)
	if total.MsgsSent != 6 || total.BatchedMsgs != 16 {
		t.Fatalf("Add: %+v", total)
	}
}

func TestAvgBatchEmpty(t *testing.T) {
	var s Snapshot
	if s.AvgBatch() != 0 {
		t.Fatal("AvgBatch of empty snapshot not 0")
	}
}

func TestStringContainsHeadlineNumbers(t *testing.T) {
	var c Counters
	c.MsgsSent.Add(7)
	got := c.Snapshot().String()
	if !strings.Contains(got, "sent=7") {
		t.Fatalf("String() = %q", got)
	}
}

func TestFaultCounters(t *testing.T) {
	var c Counters
	c.DroppedByFault.Add(5)
	c.DupedByFault.Add(2)
	c.ReorderedByFault.Add(3)
	c.PartitionNanos.Add(1_500_000_000)

	s := c.Snapshot()
	if s.DroppedByFault != 5 || s.DupedByFault != 2 || s.ReorderedByFault != 3 {
		t.Fatalf("snapshot: %+v", s)
	}
	if got := s.PartitionSecs(); got != 1.5 {
		t.Fatalf("PartitionSecs = %g, want 1.5", got)
	}

	var total Snapshot
	total.Add(s)
	total.Add(s)
	if total.DroppedByFault != 10 || total.PartitionNanos != 3_000_000_000 {
		t.Fatalf("Add: %+v", total)
	}

	out := s.String()
	for _, want := range []string{"dropped=5", "duped=2", "reordered=3", "partition=1.50s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() = %q, missing %q", out, want)
		}
	}
	if clean := (Snapshot{}).String(); strings.Contains(clean, "faults{") {
		t.Fatalf("fault-free String() mentions faults: %q", clean)
	}
}

func TestConcurrentWrites(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.MsgsSent.Add(1)
				c.Dispatches.Add(2)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.MsgsSent != 8000 || s.Dispatches != 16000 {
		t.Fatalf("lost updates: %+v", s)
	}
}
