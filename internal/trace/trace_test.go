package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestSnapshotAndAdd(t *testing.T) {
	var c Counters
	c.MsgsSent.Add(3)
	c.BytesSent.Add(100)
	c.ConsensusDecided.Add(2)
	c.BatchedMsgs.Add(8)

	s := c.Snapshot()
	if s.MsgsSent != 3 || s.BytesSent != 100 {
		t.Fatalf("snapshot: %+v", s)
	}
	if got := s.AvgBatch(); got != 4 {
		t.Fatalf("AvgBatch = %g", got)
	}

	var total Snapshot
	total.Add(s)
	total.Add(s)
	if total.MsgsSent != 6 || total.BatchedMsgs != 16 {
		t.Fatalf("Add: %+v", total)
	}
}

func TestAvgBatchEmpty(t *testing.T) {
	var s Snapshot
	if s.AvgBatch() != 0 {
		t.Fatal("AvgBatch of empty snapshot not 0")
	}
}

func TestStringContainsHeadlineNumbers(t *testing.T) {
	var c Counters
	c.MsgsSent.Add(7)
	got := c.Snapshot().String()
	if !strings.Contains(got, "sent=7") {
		t.Fatalf("String() = %q", got)
	}
}

func TestConcurrentWrites(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.MsgsSent.Add(1)
				c.Dispatches.Add(2)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.MsgsSent != 8000 || s.Dispatches != 16000 {
		t.Fatalf("lost updates: %+v", s)
	}
}
