package transport

import (
	"sync"

	"modab/internal/types"
)

// MemNetwork is an in-process network connecting the endpoints of one
// group. Channels are FIFO per pair and quasi-reliable: messages to a
// closed endpoint are silently dropped (crash-stop model). Optional drop
// rules support partition-style fault injection in tests.
type MemNetwork struct {
	mu        sync.Mutex
	endpoints map[types.ProcessID]*MemEndpoint
	dropped   map[[2]types.ProcessID]bool
}

// NewMemNetwork creates an empty in-memory network.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{
		endpoints: make(map[types.ProcessID]*MemEndpoint),
		dropped:   make(map[[2]types.ProcessID]bool),
	}
}

// Endpoint returns (creating if needed) the endpoint of process id.
func (n *MemNetwork) Endpoint(id types.ProcessID) *MemEndpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	ep := n.endpoints[id]
	if ep == nil {
		ep = &MemEndpoint{net: n, self: id}
		ep.cond = sync.NewCond(&ep.mu)
		n.endpoints[id] = ep
	}
	return ep
}

// Reset replaces the endpoint of process id with a fresh one — the
// transport half of a node restart (the old endpoint, closed when the
// node crashed, keeps silently dropping whatever still reaches it).
func (n *MemNetwork) Reset(id types.ProcessID) *MemEndpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	ep := &MemEndpoint{net: n, self: id}
	ep.cond = sync.NewCond(&ep.mu)
	n.endpoints[id] = ep
	return ep
}

// SetDrop installs (or removes) a unidirectional drop rule from -> to,
// for fault-injection tests.
func (n *MemNetwork) SetDrop(from, to types.ProcessID, drop bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if drop {
		n.dropped[[2]types.ProcessID{from, to}] = true
	} else {
		delete(n.dropped, [2]types.ProcessID{from, to})
	}
}

func (n *MemNetwork) route(from, to types.ProcessID, data []byte) {
	n.mu.Lock()
	drop := n.dropped[[2]types.ProcessID{from, to}]
	dst := n.endpoints[to]
	n.mu.Unlock()
	if drop || dst == nil {
		return
	}
	dst.enqueue(from, data)
}

// MemEndpoint is one process's in-memory transport. It delivers inbound
// messages from a dedicated pump goroutine in arrival order; the inbox is
// unbounded so senders never block (preventing event-loop deadlocks).
type MemEndpoint struct {
	net  *MemNetwork
	self types.ProcessID

	mu      sync.Mutex
	cond    *sync.Cond
	inbox   []memMsg
	started bool
	closed  bool
	done    chan struct{}
}

var _ Transport = (*MemEndpoint)(nil)

type memMsg struct {
	from types.ProcessID
	data []byte
}

// Start implements Transport.
func (ep *MemEndpoint) Start(h Handler) error {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return ErrClosed
	}
	if ep.started {
		return ErrAlreadyStarted
	}
	ep.started = true
	ep.done = make(chan struct{})
	go ep.pump(h)
	return nil
}

// pump delivers queued messages until the endpoint closes.
func (ep *MemEndpoint) pump(h Handler) {
	defer close(ep.done)
	for {
		ep.mu.Lock()
		for len(ep.inbox) == 0 && !ep.closed {
			ep.cond.Wait()
		}
		if ep.closed && len(ep.inbox) == 0 {
			ep.mu.Unlock()
			return
		}
		batch := ep.inbox
		ep.inbox = nil
		ep.mu.Unlock()
		for _, m := range batch {
			h(m.from, m.data)
		}
	}
}

func (ep *MemEndpoint) enqueue(from types.ProcessID, data []byte) {
	// Copy: the network must not alias sender-owned buffers.
	cp := make([]byte, len(data))
	copy(cp, data)
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed || !ep.started {
		return
	}
	ep.inbox = append(ep.inbox, memMsg{from: from, data: cp})
	ep.cond.Signal()
}

// Send implements Transport.
func (ep *MemEndpoint) Send(to types.ProcessID, data []byte) error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return ErrClosed
	}
	if !ep.started {
		ep.mu.Unlock()
		return ErrNotStarted
	}
	ep.mu.Unlock()
	ep.net.route(ep.self, to, data)
	return nil
}

// Close implements Transport. It waits for the pump goroutine to drain.
func (ep *MemEndpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	started := ep.started
	ep.cond.Broadcast()
	done := ep.done
	ep.mu.Unlock()
	if started {
		<-done
	}
	return nil
}
