package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"modab/internal/types"
)

// maxFrame bounds a single TCP frame (64 MiB), matching wire.MaxChunk.
const maxFrame = 64 << 20

// dialRetry is how long a failed dial suppresses re-dialing the same peer
// (sends in between are dropped; quasi-reliable channels tolerate this
// only if the peer actually crashed, which is the model's assumption).
const dialRetry = 250 * time.Millisecond

// TCP is the TCP implementation of Transport: persistent connections with
// 4-byte length-prefixed frames. Each connection is identified by a hello
// frame carrying the dialer's process ID.
type TCP struct {
	self  types.ProcessID
	addrs []string // addrs[i] is the listen address of process i

	ln      net.Listener
	handler Handler

	mu       sync.Mutex
	started  bool
	closed   bool
	conns    map[types.ProcessID]*tcpConn
	inbound  map[net.Conn]struct{}
	lastFail map[types.ProcessID]time.Time
	wg       sync.WaitGroup
}

var _ Transport = (*TCP)(nil)

// maxRetainedWriteBuf bounds the coalescing buffer kept per connection;
// a rare giant frame must not pin its memory for the connection's life.
const maxRetainedWriteBuf = 1 << 20

type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
	// wbuf is the per-connection write-coalescing scratch: the 4-byte
	// length prefix and the payload are assembled here and flushed in one
	// Write, halving the syscalls (and avoiding a small-packet flush
	// before the payload under TCP_NODELAY). Guarded by mu.
	wbuf []byte
}

// NewTCP creates a TCP transport for process self in a group whose listen
// addresses are addrs (indexed by process ID). It binds the listener
// immediately so peers can connect before Start.
func NewTCP(self types.ProcessID, addrs []string) (*TCP, error) {
	if int(self) < 0 || int(self) >= len(addrs) {
		return nil, fmt.Errorf("%w: self %d of %d", ErrUnknownPeer, self, len(addrs))
	}
	ln, err := net.Listen("tcp", addrs[self])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addrs[self], err)
	}
	cp := make([]string, len(addrs))
	copy(cp, addrs)
	return &TCP{
		self:     self,
		addrs:    cp,
		ln:       ln,
		conns:    make(map[types.ProcessID]*tcpConn),
		inbound:  make(map[net.Conn]struct{}),
		lastFail: make(map[types.ProcessID]time.Time),
	}, nil
}

// Addr returns the bound listen address (useful with ":0" addresses).
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// SetAddrs replaces the peer address table (used when peers bind ":0" and
// exchange addresses out of band, as the tests do).
func (t *TCP) SetAddrs(addrs []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs = make([]string, len(addrs))
	copy(t.addrs, addrs)
}

// Start implements Transport.
func (t *TCP) Start(h Handler) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if t.started {
		return ErrAlreadyStarted
	}
	t.started = true
	t.handler = h
	t.wg.Add(1)
	go t.acceptLoop()
	return nil
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			c.Close()
			return
		}
		t.inbound[c] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(c)
	}
}

// readLoop consumes frames from one inbound connection. The first frame
// is the hello (4-byte peer ID); subsequent frames are payloads.
func (t *TCP) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer func() {
		c.Close()
		t.mu.Lock()
		delete(t.inbound, c)
		t.mu.Unlock()
	}()
	var idBuf [4]byte
	if _, err := io.ReadFull(c, idBuf[:]); err != nil {
		return
	}
	from := types.ProcessID(int32(binary.BigEndian.Uint32(idBuf[:])))
	// The address table gates outbound dials only: an inbound peer beyond
	// the table is a joiner whose admission hasn't activated here yet (its
	// address arrives with the decided OpAdd). Reject only nonsense IDs —
	// the engine's membership guard decides whether to listen to them.
	if int(from) < 0 || from == t.self {
		return
	}
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(c, lenBuf[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(lenBuf[:])
		if size > maxFrame {
			return
		}
		data := make([]byte, size)
		if _, err := io.ReadFull(c, data); err != nil {
			return
		}
		t.mu.Lock()
		h := t.handler
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		if h != nil {
			h(from, data)
		}
	}
}

// Send implements Transport. Connections are dialed lazily; a send to an
// unreachable peer drops the message (crash-stop assumption) and backs
// off before re-dialing.
func (t *TCP) Send(to types.ProcessID, data []byte) error {
	t.mu.Lock()
	// The bounds check reads the address table under the lock: SetAddrs
	// grows it concurrently when a decided join carries a new address.
	if int(to) < 0 || int(to) >= len(t.addrs) {
		t.mu.Unlock()
		return ErrUnknownPeer
	}
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	if !t.started {
		t.mu.Unlock()
		return ErrNotStarted
	}
	conn := t.conns[to]
	t.mu.Unlock()

	if conn == nil {
		var err error
		conn, err = t.dial(to)
		if err != nil {
			return err
		}
	}
	if err := conn.writeFrame(data); err != nil {
		t.dropConn(to, conn)
		return fmt.Errorf("transport: send to %s: %w", to, err)
	}
	return nil
}

// dial establishes (or reuses, on race) the outgoing connection to a peer.
func (t *TCP) dial(to types.ProcessID) (*tcpConn, error) {
	t.mu.Lock()
	if last, ok := t.lastFail[to]; ok && time.Since(last) < dialRetry {
		t.mu.Unlock()
		return nil, fmt.Errorf("transport: peer %s in dial backoff", to)
	}
	addr := t.addrs[to]
	t.mu.Unlock()

	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.mu.Lock()
		t.lastFail[to] = time.Now()
		t.mu.Unlock()
		return nil, fmt.Errorf("transport: dial %s: %w", to, err)
	}
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	// Hello frame: our process ID.
	var idBuf [4]byte
	binary.BigEndian.PutUint32(idBuf[:], uint32(int32(t.self)))
	if _, err := c.Write(idBuf[:]); err != nil {
		c.Close()
		return nil, fmt.Errorf("transport: hello to %s: %w", to, err)
	}

	conn := &tcpConn{c: c}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		c.Close()
		return nil, ErrClosed
	}
	if existing := t.conns[to]; existing != nil {
		c.Close()
		return existing, nil
	}
	t.conns[to] = conn
	delete(t.lastFail, to)
	return conn, nil
}

func (t *TCP) dropConn(to types.ProcessID, conn *tcpConn) {
	t.mu.Lock()
	if t.conns[to] == conn {
		delete(t.conns, to)
	}
	t.mu.Unlock()
	conn.mu.Lock()
	conn.c.Close()
	conn.mu.Unlock()
}

// writeFrame writes one length-prefixed frame; serialized per connection.
// Prefix and payload are coalesced into one Write call.
func (cn *tcpConn) writeFrame(data []byte) error {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	need := 4 + len(data)
	if cap(cn.wbuf) < need {
		cn.wbuf = make([]byte, 0, need)
	}
	buf := binary.BigEndian.AppendUint32(cn.wbuf[:0], uint32(len(data)))
	buf = append(buf, data...)
	if cap(buf) <= maxRetainedWriteBuf {
		cn.wbuf = buf
	} else {
		cn.wbuf = nil
	}
	_, err := cn.c.Write(buf)
	return err
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = map[types.ProcessID]*tcpConn{}
	in := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		in = append(in, c)
	}
	t.mu.Unlock()

	t.ln.Close()
	for _, cn := range conns {
		cn.mu.Lock()
		cn.c.Close()
		cn.mu.Unlock()
	}
	for _, c := range in {
		c.Close()
	}
	t.wg.Wait()
	return nil
}
