// Package transport provides the quasi-reliable point-to-point channels
// of the system model (paper §2.1): if p sends m to q and both are
// correct, q eventually receives m; per-pair delivery is FIFO.
//
// Two implementations are provided: an in-memory network for tests and
// examples, and a TCP transport (length-prefixed frames over persistent
// connections) for running a real group with cmd/abnode.
package transport

import (
	"errors"

	"modab/internal/types"
)

// Handler consumes one inbound message. Implementations invoke it from a
// single goroutine per transport, in per-sender FIFO order.
type Handler func(from types.ProcessID, data []byte)

// Transport is one process's endpoint of the group's channels.
type Transport interface {
	// Start begins delivering inbound messages to h. It must be called
	// exactly once, before any Send.
	Start(h Handler) error
	// Send transmits data to the given process. It never blocks
	// indefinitely; delivery is quasi-reliable (guaranteed only while both
	// endpoints stay up). Send must not retain data after it returns —
	// callers reuse the buffer (the runtime driver sends pooled frames),
	// so implementations copy (in-memory network) or write synchronously
	// (TCP) before returning.
	Send(to types.ProcessID, data []byte) error
	// Close stops the endpoint and releases its resources.
	Close() error
}

// Errors common to transports.
var (
	// ErrClosed is returned by operations on a closed transport.
	ErrClosed = errors.New("transport: closed")
	// ErrUnknownPeer is returned for sends to processes outside the group.
	ErrUnknownPeer = errors.New("transport: unknown peer")
	// ErrAlreadyStarted is returned by a second Start.
	ErrAlreadyStarted = errors.New("transport: already started")
	// ErrNotStarted is returned by Send before Start.
	ErrNotStarted = errors.New("transport: not started")
)
