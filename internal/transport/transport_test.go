package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"modab/internal/types"
)

// recv is a concurrency-safe message recorder.
type recv struct {
	mu   sync.Mutex
	msgs []struct {
		from types.ProcessID
		data []byte
	}
}

func (r *recv) handler(from types.ProcessID, data []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	r.msgs = append(r.msgs, struct {
		from types.ProcessID
		data []byte
	}{from, cp})
}

func (r *recv) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.msgs)
}

func (r *recv) waitFor(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for r.count() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timeout: %d of %d messages", r.count(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMemBasicDelivery(t *testing.T) {
	net := NewMemNetwork()
	a, b := net.Endpoint(0), net.Endpoint(1)
	var rb recv
	if err := b.Start(rb.handler); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(func(types.ProcessID, []byte) {}); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	if err := a.Send(1, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	rb.waitFor(t, 1)
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.msgs[0].from != 0 || string(rb.msgs[0].data) != "hi" {
		t.Fatalf("got %+v", rb.msgs[0])
	}
}

func TestMemFIFOPerPair(t *testing.T) {
	net := NewMemNetwork()
	a, b := net.Endpoint(0), net.Endpoint(1)
	var rb recv
	_ = b.Start(rb.handler)
	_ = a.Start(func(types.ProcessID, []byte) {})
	defer a.Close()
	defer b.Close()
	const k = 500
	for i := 0; i < k; i++ {
		if err := a.Send(1, []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	rb.waitFor(t, k)
	rb.mu.Lock()
	defer rb.mu.Unlock()
	for i := 0; i < k; i++ {
		if rb.msgs[i].data[0] != byte(i) || rb.msgs[i].data[1] != byte(i>>8) {
			t.Fatalf("FIFO violated at %d", i)
		}
	}
}

func TestMemBufferNotAliased(t *testing.T) {
	net := NewMemNetwork()
	a, b := net.Endpoint(0), net.Endpoint(1)
	var rb recv
	_ = b.Start(rb.handler)
	_ = a.Start(func(types.ProcessID, []byte) {})
	defer a.Close()
	defer b.Close()
	buf := []byte{1, 2, 3}
	_ = a.Send(1, buf)
	buf[0] = 9 // mutate after send
	rb.waitFor(t, 1)
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.msgs[0].data[0] != 1 {
		t.Fatal("network aliased the sender's buffer")
	}
}

func TestMemDropRule(t *testing.T) {
	net := NewMemNetwork()
	a, b := net.Endpoint(0), net.Endpoint(1)
	var rb recv
	_ = b.Start(rb.handler)
	_ = a.Start(func(types.ProcessID, []byte) {})
	defer a.Close()
	defer b.Close()
	net.SetDrop(0, 1, true)
	_ = a.Send(1, []byte("lost"))
	net.SetDrop(0, 1, false)
	_ = a.Send(1, []byte("kept"))
	rb.waitFor(t, 1)
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if string(rb.msgs[0].data) != "kept" {
		t.Fatalf("drop rule failed: %q", rb.msgs[0].data)
	}
}

func TestMemLifecycleErrors(t *testing.T) {
	net := NewMemNetwork()
	ep := net.Endpoint(0)
	if err := ep.Send(1, nil); !errors.Is(err, ErrNotStarted) {
		t.Errorf("send before start: %v", err)
	}
	if err := ep.Start(func(types.ProcessID, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := ep.Start(func(types.ProcessID, []byte) {}); !errors.Is(err, ErrAlreadyStarted) {
		t.Errorf("double start: %v", err)
	}
	if err := ep.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ep.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
	if err := ep.Send(1, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close: %v", err)
	}
	// Sends to a closed endpoint are silently dropped (crash-stop).
	other := net.Endpoint(1)
	_ = other.Start(func(types.ProcessID, []byte) {})
	defer other.Close()
	if err := other.Send(0, []byte("into the void")); err != nil {
		t.Errorf("send to crashed peer should not error: %v", err)
	}
}

// tcpPair builds a started two-process TCP group on loopback.
func tcpPair(t *testing.T) (*TCP, *TCP, *recv, *recv) {
	t.Helper()
	t0, err := NewTCP(0, []string{"127.0.0.1:0", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := NewTCP(1, []string{"127.0.0.1:0", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{t0.Addr(), t1.Addr()}
	t0.SetAddrs(addrs)
	t1.SetAddrs(addrs)
	r0, r1 := &recv{}, &recv{}
	if err := t0.Start(r0.handler); err != nil {
		t.Fatal(err)
	}
	if err := t1.Start(r1.handler); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { t0.Close(); t1.Close() })
	return t0, t1, r0, r1
}

func TestTCPRoundTrip(t *testing.T) {
	t0, t1, r0, r1 := tcpPair(t)
	if err := t0.Send(1, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	r1.waitFor(t, 1)
	if err := t1.Send(0, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	r0.waitFor(t, 1)
	r1.mu.Lock()
	if r1.msgs[0].from != 0 || string(r1.msgs[0].data) != "ping" {
		t.Fatalf("got %+v", r1.msgs[0])
	}
	r1.mu.Unlock()
	r0.mu.Lock()
	if r0.msgs[0].from != 1 || string(r0.msgs[0].data) != "pong" {
		t.Fatalf("got %+v", r0.msgs[0])
	}
	r0.mu.Unlock()
}

func TestTCPLargeFrame(t *testing.T) {
	t0, _, _, r1 := tcpPair(t)
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	if err := t0.Send(1, big); err != nil {
		t.Fatal(err)
	}
	r1.waitFor(t, 1)
	r1.mu.Lock()
	defer r1.mu.Unlock()
	if !bytes.Equal(r1.msgs[0].data, big) {
		t.Fatal("large frame corrupted")
	}
}

func TestTCPManyFramesFIFO(t *testing.T) {
	t0, _, _, r1 := tcpPair(t)
	const k = 200
	for i := 0; i < k; i++ {
		if err := t0.Send(1, []byte(fmt.Sprintf("m%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	r1.waitFor(t, k)
	r1.mu.Lock()
	defer r1.mu.Unlock()
	for i := 0; i < k; i++ {
		if want := fmt.Sprintf("m%04d", i); string(r1.msgs[i].data) != want {
			t.Fatalf("FIFO violated at %d: %q", i, r1.msgs[i].data)
		}
	}
}

func TestTCPSendToDeadPeerFailsThenBacksOff(t *testing.T) {
	t0, err := NewTCP(0, []string{"127.0.0.1:0", "127.0.0.1:1"}) // port 1: refused
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	if err := t0.Start(func(types.ProcessID, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := t0.Send(1, []byte("x")); err == nil {
		t.Fatal("send to refused port succeeded")
	}
	// Immediately after, the dial backoff short-circuits.
	if err := t0.Send(1, []byte("x")); err == nil {
		t.Fatal("backoff did not apply")
	}
}

func TestTCPUnknownPeerAndLifecycle(t *testing.T) {
	t0, _, _, _ := tcpPair(t)
	if err := t0.Send(9, nil); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("unknown peer: %v", err)
	}
	if err := t0.Start(func(types.ProcessID, []byte) {}); !errors.Is(err, ErrAlreadyStarted) {
		t.Errorf("double start: %v", err)
	}
}

func TestTCPSelfIDOutOfRange(t *testing.T) {
	if _, err := NewTCP(5, []string{"127.0.0.1:0"}); err == nil {
		t.Fatal("accepted out-of-range self")
	}
}
