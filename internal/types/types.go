// Package types defines the identifiers, constants and errors shared by
// every layer of the atomic broadcast stacks.
//
// The vocabulary follows the paper "On the Cost of Modularity in Atomic
// Broadcast" (Rütti et al., DSN 2007): a static set Π = {p1..pn} of
// processes that fail only by crashing, connected by quasi-reliable
// channels, with an unreliable failure detector per process.
package types

import (
	"encoding/json"
	"errors"
	"fmt"
)

// ProcessID identifies a process of the static group Π. IDs are dense and
// zero-based: a group of size n uses IDs 0..n-1.
type ProcessID int32

// Nobody is the zero ProcessID sentinel used where "no process" is meant.
// Valid processes are >= 0, so Nobody is deliberately negative.
const Nobody ProcessID = -1

// String implements fmt.Stringer, printing the paper's p1..pn convention.
func (p ProcessID) String() string {
	if p < 0 {
		return "p?"
	}
	return fmt.Sprintf("p%d", int32(p)+1)
}

// MsgID uniquely identifies an application message abcast by a process.
// Sender assigns Seq locally and monotonically starting at 1.
type MsgID struct {
	Sender ProcessID
	Seq    uint64
}

// String implements fmt.Stringer.
func (id MsgID) String() string { return fmt.Sprintf("%s#%d", id.Sender, id.Seq) }

// Less orders MsgIDs first by sender then by sequence number. It is the
// deterministic order in which a decided batch is adelivered (§3.3: "in
// some deterministic order", consistent everywhere).
func (id MsgID) Less(other MsgID) bool {
	if id.Sender != other.Sender {
		return id.Sender < other.Sender
	}
	return id.Seq < other.Seq
}

// Stack selects one of the two implementations under study.
type Stack int

const (
	// Modular composes ABcast, Consensus and RBcast as independent
	// microprotocols (paper §3).
	Modular Stack = iota + 1
	// Monolithic merges the three protocols into a single module, enabling
	// the cross-module optimizations of paper §4.
	Monolithic
)

// String implements fmt.Stringer.
func (s Stack) String() string {
	switch s {
	case Modular:
		return "modular"
	case Monolithic:
		return "monolithic"
	default:
		return fmt.Sprintf("stack(%d)", int(s))
	}
}

// MarshalJSON encodes the stack by name, so machine-readable benchmark
// results stay self-describing.
func (s Stack) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// Majority returns the size of a strict majority of a group of n processes.
// Both consensus and the optimized reliable broadcast assume that a
// majority of processes do not crash.
func Majority(n int) int { return n/2 + 1 }

// MaxFaulty returns the maximum number of crash faults tolerated by a
// group of n processes, f = ⌈n/2⌉ - 1.
func MaxFaulty(n int) int { return (n - 1) / 2 }

// Errors shared across packages.
var (
	// ErrFlowControl is returned by Abcast when the flow-control window is
	// full; the caller must retry after deliveries drain the window.
	ErrFlowControl = errors.New("abcast blocked by flow control")
	// ErrStopped is returned when an operation is attempted on a stopped
	// node or engine.
	ErrStopped = errors.New("node is stopped")
	// ErrCrashed is returned by simulator handles after the process was
	// crashed by fault injection.
	ErrCrashed = errors.New("process has crashed")
	// ErrNotLocal is returned when an operation targets a process that is
	// not driven by this handle (e.g. a remote peer of a TCP node).
	ErrNotLocal = errors.New("process is not driven by this node")
	// ErrStalled is returned by a simulated blocking abcast when the event
	// queue empties while the flow-control window is still full: virtual
	// time cannot advance, so the window can never drain.
	ErrStalled = errors.New("simulation stalled: flow-control window cannot drain")
	// ErrEmptyGroup indicates a configuration with no processes.
	ErrEmptyGroup = errors.New("group must contain at least one process")
	// ErrBadConfig indicates an invalid configuration value.
	ErrBadConfig = errors.New("invalid configuration")
)
