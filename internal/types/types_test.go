package types

import (
	"testing"
	"testing/quick"
)

func TestMajorityAndMaxFaulty(t *testing.T) {
	cases := []struct {
		n, majority, faulty int
	}{
		{1, 1, 0}, {2, 2, 0}, {3, 2, 1}, {4, 3, 1},
		{5, 3, 2}, {6, 4, 2}, {7, 4, 3}, {8, 5, 3},
	}
	for _, c := range cases {
		if got := Majority(c.n); got != c.majority {
			t.Errorf("Majority(%d) = %d, want %d", c.n, got, c.majority)
		}
		if got := MaxFaulty(c.n); got != c.faulty {
			t.Errorf("MaxFaulty(%d) = %d, want %d", c.n, got, c.faulty)
		}
	}
}

func TestMajorityCoversFaulty(t *testing.T) {
	// Invariant: a majority of correct processes must exist even with
	// MaxFaulty crashes: n - MaxFaulty(n) >= Majority(n).
	f := func(raw uint8) bool {
		n := int(raw%64) + 1
		return n-MaxFaulty(n) >= Majority(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMsgIDLessIsStrictTotalOrder(t *testing.T) {
	f := func(s1, s2 int32, q1, q2 uint64) bool {
		a := MsgID{Sender: ProcessID(s1), Seq: q1}
		b := MsgID{Sender: ProcessID(s2), Seq: q2}
		switch {
		case a == b:
			return !a.Less(b) && !b.Less(a)
		default:
			return a.Less(b) != b.Less(a) // exactly one direction
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMsgIDLessTransitivity(t *testing.T) {
	f := func(s1, s2, s3 int8, q1, q2, q3 uint8) bool {
		a := MsgID{Sender: ProcessID(s1), Seq: uint64(q1)}
		b := MsgID{Sender: ProcessID(s2), Seq: uint64(q2)}
		c := MsgID{Sender: ProcessID(s3), Seq: uint64(q3)}
		if a.Less(b) && b.Less(c) {
			return a.Less(c)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestStrings(t *testing.T) {
	if got := ProcessID(0).String(); got != "p1" {
		t.Errorf("ProcessID(0) = %q", got)
	}
	if got := Nobody.String(); got != "p?" {
		t.Errorf("Nobody = %q", got)
	}
	if got := (MsgID{Sender: 2, Seq: 7}).String(); got != "p3#7" {
		t.Errorf("MsgID = %q", got)
	}
	if Modular.String() != "modular" || Monolithic.String() != "monolithic" {
		t.Error("stack names wrong")
	}
	if got := Stack(99).String(); got != "stack(99)" {
		t.Errorf("unknown stack = %q", got)
	}
}
