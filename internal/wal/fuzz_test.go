package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"modab/internal/recovery"
	"modab/internal/types"
	"modab/internal/wire"
)

// fuzzRecord frames one record payload the way append does.
func fuzzRecord(kind recovery.RecKind, instance uint64, b wire.Batch) []byte {
	w := wire.NewWriter(64)
	w.Uint32(0)
	w.Uint32(0)
	w.Uint8(uint8(kind))
	if kind == recovery.RecDecision {
		w.Uint64(instance)
	}
	b.Marshal(w)
	buf := w.Bytes()
	payload := buf[recHeaderBytes:]
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	return buf
}

// FuzzSegmentScan fuzzes the on-disk segment parser: arbitrary bytes are
// written as the only segment of a log directory, then opened, replayed,
// and re-opened. Open must never panic; whatever survives the torn-tail
// truncation must replay cleanly and be stable across a second open (the
// crash-during-append contract).
func FuzzSegmentScan(f *testing.F) {
	boot := fuzzRecord(recovery.RecBoot, 0, nil)
	admit := fuzzRecord(recovery.RecAdmit, 0,
		wire.Batch{{ID: types.MsgID{Sender: 1, Seq: 1}, Body: []byte("payload")}})
	decide := fuzzRecord(recovery.RecDecision, 1,
		wire.Batch{{ID: types.MsgID{Sender: 1, Seq: 1}, Body: []byte("payload")}})
	full := append(append(append([]byte(nil), boot...), admit...), decide...)
	f.Add(full)
	f.Add(full[:len(full)-5]) // torn tail
	corrupt := append([]byte(nil), full...)
	corrupt[len(boot)+9] ^= 0xff // flip a byte inside the admit payload
	f.Add(corrupt)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 4, 1, 2, 3, 4})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "00000001.wal"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{Policy: SyncNone})
		if err != nil {
			return // corruption before the tail: rejected, never panics
		}
		records := 0
		if rerr := l.Replay(func(r recovery.Rec) error {
			records++
			return nil
		}); rerr != nil {
			t.Fatalf("Open accepted the segment but Replay failed: %v", rerr)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		// The truncated-on-open segment must be stable: a second open sees
		// the same records without further truncation.
		l2, err := Open(dir, Options{Policy: SyncNone})
		if err != nil {
			t.Fatalf("re-Open after truncation failed: %v", err)
		}
		records2 := 0
		if rerr := l2.Replay(func(r recovery.Rec) error {
			records2++
			return nil
		}); rerr != nil {
			t.Fatalf("re-Replay failed: %v", rerr)
		}
		if records2 != records {
			t.Fatalf("replay unstable across opens: %d then %d records", records, records2)
		}
		l2.Close()
	})
}
