package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"modab/internal/recovery"
	"modab/internal/types"
	"modab/internal/wire"
)

// TestGenerateFuzzCorpus regenerates the checked-in seed corpus for
// FuzzSegmentScan when run with WAL_GEN_CORPUS=1 (a no-op otherwise); the
// corpus keeps the structurally interesting inputs stable even if the
// in-code f.Add seeds drift.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("WAL_GEN_CORPUS") == "" {
		t.Skip("set WAL_GEN_CORPUS=1 to regenerate testdata/fuzz")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzSegmentScan")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	boot := fuzzRecord(recovery.RecBoot, 0, nil)
	admit := fuzzRecord(recovery.RecAdmit, 0,
		wire.Batch{{ID: types.MsgID{Sender: 1, Seq: 1}, Body: []byte("payload")}})
	decide := fuzzRecord(recovery.RecDecision, 1,
		wire.Batch{{ID: types.MsgID{Sender: 1, Seq: 1}, Body: []byte("payload")}})
	full := append(append(append([]byte(nil), boot...), admit...), decide...)
	corrupt := append([]byte(nil), full...)
	corrupt[len(boot)+9] ^= 0xff
	for name, data := range map[string][]byte{
		"well_formed_log": full,
		"torn_tail":       full[:len(full)-5],
		"mid_corruption":  corrupt,
	} {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
