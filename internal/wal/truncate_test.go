package wal

import (
	"os"
	"path/filepath"
	"testing"

	"modab/internal/dedup"
	"modab/internal/recovery"
	"modab/internal/types"
	"modab/internal/wire"
)

// dirBytes sums the on-disk size of every segment file.
func dirBytes(t *testing.T, dir string) int64 {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, name := range names {
		st, err := os.Stat(name)
		if err != nil {
			t.Fatal(err)
		}
		total += st.Size()
	}
	return total
}

// coveredBelow builds a covered-predicate over per-sender watermarks, the
// shape the rsm applier derives from a snapshot's dedup state.
func coveredBelow(maxSeq uint64) func(m wire.AppMsg) bool {
	return func(m wire.AppMsg) bool { return m.ID.Seq <= maxSeq }
}

// fillSegments writes boot + per-instance admit/decision pairs through a
// tiny-segment log so instances spread over many segment files.
func fillSegments(t *testing.T, dir string, instances uint64) {
	t.Helper()
	l, err := Open(dir, Options{Policy: SyncNone, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	l.PersistBoot()
	for k := uint64(1); k <= instances; k++ {
		b := wire.Batch{msg(0, k, "payload-payload-payload")}
		l.PersistAdmit(b)
		l.PersistDecision(k, b)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncateBelowShrinksLogAndKeepsSuffix(t *testing.T) {
	dir := t.TempDir()
	fillSegments(t, dir, 40)
	l, err := Open(dir, Options{Policy: SyncNone, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	before := l.Segments()
	if before < 4 {
		t.Fatalf("test needs several segments, got %d", before)
	}
	sizeBefore := dirBytes(t, dir)
	removed := l.TruncateBelow(30, coveredBelow(30))
	if removed == 0 {
		t.Fatalf("no segments removed")
	}
	if l.Segments() != before-removed {
		t.Fatalf("segment count %d after removing %d from %d", l.Segments(), removed, before)
	}
	if sizeAfter := dirBytes(t, dir); sizeAfter >= sizeBefore {
		t.Fatalf("on-disk size did not shrink: %d -> %d", sizeBefore, sizeAfter)
	}
	// The suffix above the snapshot must still replay, in order.
	var decisions []uint64
	if err := l.Replay(func(r recovery.Rec) error {
		if r.Kind == recovery.RecDecision {
			decisions = append(decisions, r.Instance)
		}
		return nil
	}); err != nil {
		t.Fatalf("Replay after truncation: %v", err)
	}
	// Decisions at or below the snapshot may survive in pinned segments
	// (the boot-marker segment never goes away); the suffix above the
	// snapshot must survive completely and contiguously.
	var suffix []uint64
	for _, k := range decisions {
		if k > 30 {
			suffix = append(suffix, k)
		}
	}
	if len(suffix) != 10 || suffix[0] != 31 || suffix[len(suffix)-1] != 40 {
		t.Fatalf("suffix above the snapshot damaged: %v", suffix)
	}
	for i := 1; i < len(suffix); i++ {
		if suffix[i] != suffix[i-1]+1 {
			t.Fatalf("suffix has a gap: %v", suffix)
		}
	}
	// Decisions above the snapshot stay randomly readable; truncated ones
	// are gone from the index.
	if _, ok := l.ReadDecision(40); !ok {
		t.Fatalf("ReadDecision(40) failed after truncation")
	}
	kept := make(map[uint64]bool, len(decisions))
	for _, k := range decisions {
		kept[k] = true
	}
	for k := uint64(1); k <= 30; k++ {
		if _, ok := l.ReadDecision(k); ok != kept[k] {
			t.Fatalf("ReadDecision(%d) = %v, replayable = %v", k, ok, kept[k])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncateThenRestartReplaysCorrectly(t *testing.T) {
	dir := t.TempDir()
	fillSegments(t, dir, 40)
	l, err := Open(dir, Options{Policy: SyncNone, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if removed := l.TruncateBelow(30, coveredBelow(30)); removed == 0 {
		t.Fatalf("no segments removed")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Restart: the truncated log must open cleanly and seed a recovered
	// state whose watermark reflects the full history when anchored at the
	// snapshot.
	l2, err := Open(dir, Options{Policy: SyncNone, SegmentBytes: 256})
	if err != nil {
		t.Fatalf("reopen after truncation: %v", err)
	}
	defer l2.Close()
	dm := dedup.NewMap(1)
	for k := uint64(1); k <= 30; k++ {
		dm.Mark(types.MsgID{Sender: 0, Seq: k})
	}
	st, err := recovery.ReplayStateFrom(l2, 1, 0, 30, dm)
	if err != nil {
		t.Fatalf("ReplayStateFrom: %v", err)
	}
	if st == nil || st.NextDecide != 41 {
		t.Fatalf("recovered NextDecide = %+v, want 41", st)
	}
	if len(st.Own) != 0 {
		t.Fatalf("recovered Own = %d messages, want 0 (all ordered)", len(st.Own))
	}
	if st.NextSeq != 41 {
		t.Fatalf("recovered NextSeq = %d, want 41", st.NextSeq)
	}
}

func TestTruncateNeverTouchesOpenSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNone}) // default 4 MiB: one open segment
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.PersistBoot()
	for k := uint64(1); k <= 10; k++ {
		b := wire.Batch{msg(0, k, "x")}
		l.PersistAdmit(b)
		l.PersistDecision(k, b)
	}
	// Everything is covered, but it all lives in the open segment.
	if removed := l.TruncateBelow(10, coveredBelow(10)); removed != 0 {
		t.Fatalf("open segment truncated (%d removed)", removed)
	}
	if l.Segments() != 1 {
		t.Fatalf("segments = %d, want 1", l.Segments())
	}
	if _, ok := l.ReadDecision(5); !ok {
		t.Fatalf("open-segment decision lost")
	}
}

func TestTruncateAtZeroKeepsBootMarker(t *testing.T) {
	dir := t.TempDir()
	fillSegments(t, dir, 8)
	l, err := Open(dir, Options{Policy: SyncNone, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// A snapshot at index 0 is "no snapshot": nothing may be truncated.
	if removed := l.TruncateBelow(0, coveredBelow(8)); removed != 0 {
		t.Fatalf("TruncateBelow(0) removed %d segments", removed)
	}
	boots := 0
	if err := l.Replay(func(r recovery.Rec) error {
		if r.Kind == recovery.RecBoot {
			boots++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if boots != 1 {
		t.Fatalf("boot markers = %d, want 1", boots)
	}
	// Even a real snapshot never drops a boot marker: the segment holding
	// it is pinned regardless of coverage.
	l.TruncateBelow(8, coveredBelow(8))
	boots = 0
	if err := l.Replay(func(r recovery.Rec) error {
		if r.Kind == recovery.RecBoot {
			boots++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if boots != 1 {
		t.Fatalf("boot marker lost after truncation (%d left)", boots)
	}
}
