// Package wal implements the file-backed write-ahead log of the
// crash-recovery subsystem: a segmented append-only log of CRC-checked
// records implementing recovery.Store, so the engines persist admissions
// and consensus decisions through it (engine.Persister) and a restarted
// process replays it back into protocol state (recovery.ReplayState).
//
// # On-disk format
//
// A log is a directory of segment files named 00000001.wal, 00000002.wal,
// ... Appends go to the highest-numbered segment; a segment is rotated
// once it exceeds Options.SegmentBytes. Each record is
//
//	[u32 payload length][u32 CRC-32C of payload][payload]
//
// with the payload starting in a one-byte record kind (admit or decision)
// followed by the wire-encoded batch (decisions carry the instance number
// first). Integrity is per record: a torn tail — a partial or
// CRC-corrupt record at the end of the last segment, the footprint of a
// crash mid-append — is truncated away on Open; corruption anywhere else
// fails Open with ErrCorrupt.
//
// # Fsync policy
//
// SyncAlways fsyncs after every append (durable against power loss, the
// slowest), SyncInterval fsyncs on a background ticker (bounded loss
// window), SyncNone leaves flushing to the OS (durable against process
// crashes only — a completed write survives the process that made it).
// All policies sync on Close.
//
// Append errors are fail-stop: a process that cannot persist must not
// keep running as if it could, so write failures panic (the
// engine.Persister contract).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"modab/internal/obs"
	"modab/internal/recovery"
	"modab/internal/wire"
)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append. The default: zero loss window.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background ticker (Options.Interval).
	SyncInterval
	// SyncNone never fsyncs explicitly before Close; the OS flushes when
	// it pleases. Survives process crashes, not power loss.
	SyncNone
)

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Options tunes a log. The zero value is usable: SyncAlways, 4 MiB
// segments, 2 ms interval (if SyncInterval is selected).
type Options struct {
	// Policy is the fsync policy.
	Policy SyncPolicy
	// Interval is the background fsync period under SyncInterval.
	Interval time.Duration
	// SegmentBytes is the rotation threshold for segment files.
	SegmentBytes int64
	// Obs, when non-nil, records every fsync's wall-clock duration into
	// the owning process's Fsync latency histogram.
	Obs *obs.Recorder
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 2 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// Errors.
var (
	// ErrCorrupt indicates a CRC mismatch before the tail of the log.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrClosed is returned by operations on a closed log.
	ErrClosed = errors.New("wal: closed")
)

// castagnoli is the CRC-32C table (the checksum used by most storage
// systems; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// recHeaderBytes is the fixed per-record framing: length + CRC.
const recHeaderBytes = 8

// maxRecordBytes bounds one record (matches wire.MaxChunk): fail fast on
// a corrupt length prefix instead of allocating absurd buffers.
const maxRecordBytes = 64 << 20

// recRef locates one persisted decision for random access.
type recRef struct {
	seg uint64 // segment id
	off int64  // offset of the record header in the segment
	n   uint32 // payload length
}

// Log is a segmented write-ahead log. Appends are serialized by an
// internal mutex (the engine event loop is the only writer, but the
// SyncInterval flusher runs concurrently).
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	cur     *os.File // append handle of the highest segment
	curID   uint64
	curSize int64
	segs    []uint64            // segment ids, ascending; last == curID
	index   map[uint64]recRef   // instance -> decision record
	readers map[uint64]*os.File // read handles, opened on demand
	dirty   bool                // unsynced appends outstanding
	closed  bool

	stop chan struct{}
	wg   sync.WaitGroup
}

var _ recovery.Store = (*Log)(nil)

// segPath returns the path of segment id.
func (l *Log) segPath(id uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%08d.wal", id))
}

// Open opens (creating if needed) the log in dir, scanning existing
// segments, truncating a torn tail, and building the decision index.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{
		dir:     dir,
		opts:    opts,
		index:   make(map[uint64]recRef),
		readers: make(map[uint64]*os.File),
		stop:    make(chan struct{}),
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	sort.Strings(names)
	for _, name := range names {
		var id uint64
		if _, err := fmt.Sscanf(filepath.Base(name), "%08d.wal", &id); err != nil || id == 0 {
			return nil, fmt.Errorf("wal: unexpected file %s in log directory", name)
		}
		l.segs = append(l.segs, id)
	}
	if len(l.segs) == 0 {
		l.segs = []uint64{1}
	}
	// Scan every segment: index decisions, and truncate the torn tail of
	// the last one.
	for i, id := range l.segs {
		last := i == len(l.segs)-1
		size, err := l.scanSegment(id, last)
		if err != nil {
			return nil, err
		}
		if last {
			l.curID = id
			l.curSize = size
		}
	}
	f, err := os.OpenFile(l.segPath(l.curID), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Seek(l.curSize, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.cur = f
	if opts.Policy == SyncInterval {
		l.wg.Add(1)
		go l.syncLoop()
	}
	return l, nil
}

// scanSegment validates segment id record by record — framing, checksum,
// and payload structure, exactly what Replay will later require, so a log
// that opens is guaranteed to replay — adds its decisions to the index,
// and returns the byte size of the valid prefix. When tolerateTail is set
// (last segment only) a partial or corrupt final record is truncated away
// instead of failing. (A CRC-valid but structurally invalid record is
// possible: the empty payload checksums to 0, so an 8-byte zero run looks
// CRC-clean — found by FuzzSegmentScan.)
func (l *Log) scanSegment(id uint64, tolerateTail bool) (int64, error) {
	path := l.segPath(id)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	var off int64
	for int64(len(data))-off >= recHeaderBytes {
		r := wire.NewReader(data[off:])
		n := r.Uint32()
		crc := r.Uint32()
		if n > maxRecordBytes || int64(len(data))-off-recHeaderBytes < int64(n) {
			break // torn or corrupt length: treat as tail
		}
		payload := data[off+recHeaderBytes : off+recHeaderBytes+int64(n)]
		if crc32.Checksum(payload, castagnoli) != crc {
			break // corrupt record: treat as tail
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			break // CRC-valid but structurally corrupt: treat as tail
		}
		if rec.Kind == recovery.RecDecision {
			l.index[rec.Instance] = recRef{seg: id, off: off, n: n}
		}
		off += recHeaderBytes + int64(n)
	}
	if off != int64(len(data)) {
		if !tolerateTail {
			return 0, fmt.Errorf("%w: segment %s at offset %d", ErrCorrupt, path, off)
		}
		if err := os.Truncate(path, off); err != nil {
			return 0, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	return off, nil
}

// syncCur fsyncs the current segment, recording the wall-clock duration
// in the Fsync histogram when observability is enabled. Caller holds mu.
func (l *Log) syncCur() error {
	start := time.Now()
	err := l.cur.Sync()
	if err == nil {
		l.opts.Obs.FsyncObserved(time.Since(start))
	}
	return err
}

// syncLoop is the SyncInterval background flusher.
func (l *Log) syncLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if l.dirty && !l.closed {
				if err := l.syncCur(); err == nil {
					l.dirty = false
				}
			}
			l.mu.Unlock()
		}
	}
}

// append writes one record, honoring the fsync policy and rotating the
// segment when it grows past the threshold. Fail-stop on write errors.
func (l *Log) append(kind recovery.RecKind, instance uint64, b wire.Batch) {
	// Assemble the payload, then frame it.
	w := wire.NewWriter(recHeaderBytes + 1 + 8 + b.WireSize())
	w.Uint32(0) // length placeholder
	w.Uint32(0) // crc placeholder
	w.Uint8(uint8(kind))
	if kind == recovery.RecDecision {
		w.Uint64(instance)
	}
	b.Marshal(w)
	buf := w.Bytes()
	payload := buf[recHeaderBytes:]
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		panic(fmt.Sprintf("wal: append to closed log %s", l.dir))
	}
	off := l.curSize
	if _, err := l.cur.Write(buf); err != nil {
		panic(fmt.Sprintf("wal: append to %s: %v", l.segPath(l.curID), err))
	}
	l.curSize += int64(len(buf))
	l.dirty = true
	if kind == recovery.RecDecision {
		l.index[instance] = recRef{seg: l.curID, off: off, n: uint32(len(payload))}
	}
	if l.opts.Policy == SyncAlways {
		if err := l.syncCur(); err != nil {
			panic(fmt.Sprintf("wal: fsync %s: %v", l.segPath(l.curID), err))
		}
		l.dirty = false
	}
	if l.curSize >= l.opts.SegmentBytes {
		l.rotate()
	}
}

// rotate seals the current segment and starts the next one. Caller holds mu.
func (l *Log) rotate() {
	if err := l.syncCur(); err != nil {
		panic(fmt.Sprintf("wal: fsync %s: %v", l.segPath(l.curID), err))
	}
	if err := l.cur.Close(); err != nil {
		panic(fmt.Sprintf("wal: close %s: %v", l.segPath(l.curID), err))
	}
	l.dirty = false
	l.curID++
	l.segs = append(l.segs, l.curID)
	f, err := os.OpenFile(l.segPath(l.curID), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		panic(fmt.Sprintf("wal: rotate to %s: %v", l.segPath(l.curID), err))
	}
	l.cur = f
	l.curSize = 0
}

// PersistAdmit implements engine.Persister.
func (l *Log) PersistAdmit(b wire.Batch) { l.append(recovery.RecAdmit, 0, b) }

// PersistDecision implements engine.Persister.
func (l *Log) PersistDecision(k uint64, b wire.Batch) { l.append(recovery.RecDecision, k, b) }

// PersistBoot implements recovery.Store: stamp the start of an
// incarnation (drivers call it once, right after replaying).
func (l *Log) PersistBoot() { l.append(recovery.RecBoot, 0, nil) }

// ReadDecision implements engine.Persister: random access to a persisted
// decision through the in-memory index (state-transfer service beyond the
// engines' retention horizon).
func (l *Log) ReadDecision(k uint64) (wire.Batch, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ref, ok := l.index[k]
	if !ok || l.closed {
		return nil, false
	}
	f, err := l.reader(ref.seg)
	if err != nil {
		return nil, false
	}
	payload := make([]byte, ref.n)
	if _, err := f.ReadAt(payload, ref.off+recHeaderBytes); err != nil {
		return nil, false
	}
	r := wire.NewReader(payload)
	if kind := recovery.RecKind(r.Uint8()); kind != recovery.RecDecision {
		return nil, false
	}
	if inst := r.Uint64(); inst != k {
		return nil, false
	}
	b := wire.UnmarshalBatch(r)
	if r.Err() != nil {
		return nil, false
	}
	return b, true
}

// reader returns (caching) a read-only handle for segment id. Caller
// holds mu.
func (l *Log) reader(id uint64) (*os.File, error) {
	if f := l.readers[id]; f != nil {
		return f, nil
	}
	f, err := os.Open(l.segPath(id))
	if err != nil {
		return nil, err
	}
	l.readers[id] = f
	return f, nil
}

// Replay implements recovery.Store: stream every record in append order.
// It reads the validated on-disk state, so it is normally called once,
// right after Open.
func (l *Log) Replay(fn func(r recovery.Rec) error) error {
	l.mu.Lock()
	segs := make([]uint64, len(l.segs))
	copy(segs, l.segs)
	sizes := make(map[uint64]int64, len(segs))
	for _, id := range segs {
		if id == l.curID {
			sizes[id] = l.curSize
		} else {
			sizes[id] = -1 // whole file
		}
	}
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return ErrClosed
	}
	for _, id := range segs {
		data, err := os.ReadFile(l.segPath(id))
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if lim := sizes[id]; lim >= 0 && int64(len(data)) > lim {
			data = data[:lim]
		}
		var off int64
		for int64(len(data))-off >= recHeaderBytes {
			r := wire.NewReader(data[off:])
			n := r.Uint32()
			crc := r.Uint32()
			if n > maxRecordBytes || int64(len(data))-off-recHeaderBytes < int64(n) {
				return fmt.Errorf("%w: segment %d at offset %d", ErrCorrupt, id, off)
			}
			payload := data[off+recHeaderBytes : off+recHeaderBytes+int64(n)]
			if crc32.Checksum(payload, castagnoli) != crc {
				return fmt.Errorf("%w: segment %d at offset %d", ErrCorrupt, id, off)
			}
			rec, err := decodeRecord(payload)
			if err != nil {
				return err
			}
			if err := fn(rec); err != nil {
				return err
			}
			off += recHeaderBytes + int64(n)
		}
		if off != int64(len(data)) {
			return fmt.Errorf("%w: segment %d trailing %d bytes", ErrCorrupt, id, int64(len(data))-off)
		}
	}
	return nil
}

// decodeRecord parses one validated payload into a recovery.Rec.
func decodeRecord(payload []byte) (recovery.Rec, error) {
	r := wire.NewReader(payload)
	kind := recovery.RecKind(r.Uint8())
	var rec recovery.Rec
	rec.Kind = kind
	switch kind {
	case recovery.RecAdmit, recovery.RecBoot:
	case recovery.RecDecision:
		rec.Instance = r.Uint64()
	default:
		return recovery.Rec{}, fmt.Errorf("%w: unknown record kind %d", ErrCorrupt, kind)
	}
	rec.Batch = wire.UnmarshalBatch(r)
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return recovery.Rec{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return rec, nil
}

// TruncateBelow implements recovery.Store at segment granularity: a
// sealed segment is removed when every record in it is redundant given a
// durable snapshot at instance snap — decisions at or below snap, admits
// fully covered by the snapshot — and it holds no boot marker. The open
// segment always survives (the current incarnation is appending to it),
// so the log keeps at least one segment and remains openable. Returns
// the number of segment files removed.
func (l *Log) TruncateBelow(snap uint64, covered func(m wire.AppMsg) bool) int {
	if snap == 0 {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0
	}
	removed := 0
	kept := l.segs[:0]
	for i, id := range l.segs {
		if i == len(l.segs)-1 || !l.segmentRedundant(id, snap, covered) {
			kept = append(kept, id)
			continue
		}
		if err := os.Remove(l.segPath(id)); err != nil {
			// Removal is an optimization; a segment that will not go away
			// simply stays part of the log.
			kept = append(kept, id)
			continue
		}
		if f := l.readers[id]; f != nil {
			f.Close()
			delete(l.readers, id)
		}
		for inst, ref := range l.index {
			if ref.seg == id {
				delete(l.index, inst)
			}
		}
		removed++
	}
	l.segs = kept
	return removed
}

// segmentRedundant re-reads sealed segment id and reports whether every
// record in it is covered by a snapshot at snap. Caller holds mu.
func (l *Log) segmentRedundant(id, snap uint64, covered func(m wire.AppMsg) bool) bool {
	data, err := os.ReadFile(l.segPath(id))
	if err != nil {
		return false
	}
	var off int64
	for int64(len(data))-off >= recHeaderBytes {
		r := wire.NewReader(data[off:])
		n := r.Uint32()
		r.Uint32() // crc, validated at Open
		if n > maxRecordBytes || int64(len(data))-off-recHeaderBytes < int64(n) {
			return false
		}
		rec, err := decodeRecord(data[off+recHeaderBytes : off+recHeaderBytes+int64(n)])
		if err != nil {
			return false
		}
		switch rec.Kind {
		case recovery.RecDecision:
			if rec.Instance > snap {
				return false
			}
		case recovery.RecAdmit:
			if covered == nil || len(rec.Batch) == 0 {
				return false
			}
			for _, m := range rec.Batch {
				if !covered(m) {
					return false
				}
			}
		default:
			// Boot markers (and anything unknown) pin their segment.
			return false
		}
		off += recHeaderBytes + int64(n)
	}
	return off == int64(len(data))
}

// Sync implements recovery.Store.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if !l.dirty {
		return nil
	}
	if err := l.cur.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.dirty = false
	return nil
}

// Close implements recovery.Store: final sync, stop the background
// flusher, release every handle. The log directory stays replayable.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	err := l.cur.Sync()
	if cerr := l.cur.Close(); err == nil {
		err = cerr
	}
	for _, f := range l.readers {
		f.Close()
	}
	l.readers = nil
	l.mu.Unlock()
	close(l.stop)
	l.wg.Wait()
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Segments returns the current segment count (tests and diagnostics).
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}
