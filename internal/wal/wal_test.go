package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"modab/internal/recovery"
	"modab/internal/types"
	"modab/internal/wire"
)

func msg(sender types.ProcessID, seq uint64, body string) wire.AppMsg {
	return wire.AppMsg{ID: types.MsgID{Sender: sender, Seq: seq}, Body: []byte(body)}
}

func collect(t *testing.T, l *Log) []recovery.Rec {
	t.Helper()
	var recs []recovery.Rec
	if err := l.Replay(func(r recovery.Rec) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs
}

func TestRoundtripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNone})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	l.PersistBoot()
	l.PersistAdmit(wire.Batch{msg(1, 1, "a"), msg(1, 2, "b")})
	l.PersistDecision(1, wire.Batch{msg(0, 1, "x"), msg(1, 1, "a")})
	l.PersistDecision(2, wire.Batch{msg(1, 2, "b")})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, err := Open(dir, Options{Policy: SyncNone})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	recs := collect(t, l2)
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs))
	}
	wantKinds := []recovery.RecKind{recovery.RecBoot, recovery.RecAdmit, recovery.RecDecision, recovery.RecDecision}
	for i, k := range wantKinds {
		if recs[i].Kind != k {
			t.Fatalf("record %d kind = %d, want %d", i, recs[i].Kind, k)
		}
	}
	if recs[3].Instance != 2 || len(recs[3].Batch) != 1 || string(recs[3].Batch[0].Body) != "b" {
		t.Fatalf("decision record mangled: %+v", recs[3])
	}
	// Random access works after reopen (state-transfer service path).
	b, ok := l2.ReadDecision(1)
	if !ok || len(b) != 2 || string(b[1].Body) != "a" {
		t.Fatalf("ReadDecision(1) = %v, %v", b, ok)
	}
	if _, ok := l2.ReadDecision(99); ok {
		t.Fatal("ReadDecision invented an instance")
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNone})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	l.PersistDecision(1, wire.Batch{msg(0, 1, "keep")})
	l.PersistDecision(2, wire.Batch{msg(0, 2, "torn")})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Tear the last record: chop a few bytes off the segment, the
	// footprint of a crash mid-append.
	seg := filepath.Join(dir, "00000001.wal")
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if err := os.Truncate(seg, fi.Size()-3); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	l2, err := Open(dir, Options{Policy: SyncNone})
	if err != nil {
		t.Fatalf("reopen after tear: %v", err)
	}
	defer l2.Close()
	recs := collect(t, l2)
	if len(recs) != 1 || recs[0].Instance != 1 {
		t.Fatalf("torn log replayed %d records (%v), want just instance 1", len(recs), recs)
	}
	if _, ok := l2.ReadDecision(2); ok {
		t.Fatal("torn decision still readable")
	}
	// The log must accept appends after the truncated tail.
	l2.PersistDecision(2, wire.Batch{msg(0, 2, "retry")})
	if b, ok := l2.ReadDecision(2); !ok || string(b[0].Body) != "retry" {
		t.Fatalf("append after tear: %v, %v", b, ok)
	}
}

func TestCorruptRecordBeforeTailFails(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force every record into its own file, so a corrupt
	// record sits in a non-final segment — integrity loss, not a torn tail.
	l, err := Open(dir, Options{Policy: SyncNone, SegmentBytes: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	l.PersistDecision(1, wire.Batch{msg(0, 1, "one")})
	l.PersistDecision(2, wire.Batch{msg(0, 2, "two")})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Flip a payload byte of the first segment's record.
	seg := filepath.Join(dir, "00000001.wal")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := Open(dir, Options{Policy: SyncNone, SegmentBytes: 1}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over mid-log corruption = %v, want ErrCorrupt", err)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNone, SegmentBytes: 256})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const instances = 20
	for k := uint64(1); k <= instances; k++ {
		l.PersistDecision(k, wire.Batch{msg(0, k, "0123456789abcdef0123456789abcdef")})
	}
	if l.Segments() < 2 {
		t.Fatalf("no rotation after %d records (%d segments)", instances, l.Segments())
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, err := Open(dir, Options{Policy: SyncNone, SegmentBytes: 256})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	recs := collect(t, l2)
	if len(recs) != instances {
		t.Fatalf("replayed %d records across segments, want %d", len(recs), instances)
	}
	for k := uint64(1); k <= instances; k++ {
		if _, ok := l2.ReadDecision(k); !ok {
			t.Fatalf("ReadDecision(%d) missing after rotation", k)
		}
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Policy: pol, Interval: time.Millisecond})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			l.PersistAdmit(wire.Batch{msg(0, 1, "p")})
			if err := l.Sync(); err != nil {
				t.Fatalf("Sync: %v", err)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("second Close: %v", err)
			}
			if _, err := ReplayViaState(dir); err != nil {
				t.Fatalf("replay after %s: %v", pol, err)
			}
		})
	}
}

// ReplayViaState reopens a log and replays it through the recovery
// package — the exact restart path of a real node.
func ReplayViaState(dir string) (int, error) {
	l, err := Open(dir, Options{Policy: SyncNone})
	if err != nil {
		return 0, err
	}
	defer l.Close()
	n := 0
	err = l.Replay(func(recovery.Rec) error {
		n++
		return nil
	})
	return n, err
}
