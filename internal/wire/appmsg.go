package wire

import (
	"fmt"
	"sort"

	"modab/internal/types"
)

// AppMsg is an application message submitted through abcast. Both stacks
// carry AppMsgs in consensus proposals (the proposals have size ≈ M·l in
// the paper's analysis, where l is the application payload size).
type AppMsg struct {
	ID   types.MsgID
	Body []byte
}

// appMsgHeaderBytes is the wire overhead per AppMsg beyond its body:
// sender (4) + seq (8) + body length prefix (4).
const appMsgHeaderBytes = 16

// WireSize returns the encoded size of the message in bytes.
func (m AppMsg) WireSize() int { return appMsgHeaderBytes + len(m.Body) }

// Marshal appends the message to w.
func (m AppMsg) Marshal(w *Writer) {
	w.Int32(int32(m.ID.Sender))
	w.Uint64(m.ID.Seq)
	w.Bytes32(m.Body)
}

// UnmarshalAppMsg reads one AppMsg from r.
func UnmarshalAppMsg(r *Reader) AppMsg {
	var m AppMsg
	m.ID.Sender = types.ProcessID(r.Int32())
	m.ID.Seq = r.Uint64()
	m.Body = r.Bytes32()
	return m
}

// Batch is an ordered set of application messages proposed to (or decided
// by) one consensus instance.
type Batch []AppMsg

// WireSize returns the encoded size of the batch in bytes.
func (b Batch) WireSize() int {
	n := 4 // count prefix
	for _, m := range b {
		n += m.WireSize()
	}
	return n
}

// PayloadBytes returns the sum of application body lengths, the quantity
// the paper's §5.2.2 data-volume analysis is expressed in.
func (b Batch) PayloadBytes() int {
	n := 0
	for _, m := range b {
		n += len(m.Body)
	}
	return n
}

// Marshal appends the batch to w.
func (b Batch) Marshal(w *Writer) {
	w.Uint32(uint32(len(b)))
	for _, m := range b {
		m.Marshal(w)
	}
}

// UnmarshalBatch reads a batch from r.
func UnmarshalBatch(r *Reader) Batch {
	n := r.Uint32()
	if r.Err() != nil {
		return nil
	}
	if n > MaxChunk/appMsgHeaderBytes {
		r.fail(fmt.Errorf("%w: batch of %d messages", ErrTooLarge, n))
		return nil
	}
	b := make(Batch, 0, n)
	for i := uint32(0); i < n; i++ {
		b = append(b, UnmarshalAppMsg(r))
		if r.Err() != nil {
			return nil
		}
	}
	return b
}

// MaxBatchBytes is the hard byte budget for one consensus proposal: a
// quarter of MaxChunk, leaving generous headroom for the frames that
// embed a proposal inside further envelopes (relay wrapping, estimate
// piggybacks) while guaranteeing no honestly-built proposal can ever
// encode past a receiver's MaxChunk guard. Without this, an unbounded
// pool — large payloads backing up behind a slow instance — would
// produce a proposal the wire layer itself refuses to decode.
const MaxBatchBytes = MaxChunk / 4

// CapBatchBytes truncates b in place to the MaxBatchBytes encoding
// budget, always keeping at least one message so a single oversized
// payload still makes progress (a payload near MaxChunk is rejected at
// submission, not here).
func CapBatchBytes(b Batch) Batch {
	size := 4
	for i, m := range b {
		size += m.WireSize()
		if size > MaxBatchBytes && i > 0 {
			return b[:i]
		}
	}
	return b
}

// SortDeterministic orders the batch by (sender, seq) — the deterministic
// adelivery order applied to a decided batch at every process (§3.3).
func (b Batch) SortDeterministic() {
	sort.Slice(b, func(i, j int) bool { return b[i].ID.Less(b[j].ID) })
}

// Dedup removes duplicate message IDs in place, keeping first occurrences.
// The batch must already be sorted when order matters to the caller.
func (b Batch) Dedup() Batch {
	seen := make(map[types.MsgID]struct{}, len(b))
	out := b[:0]
	for _, m := range b {
		if _, dup := seen[m.ID]; dup {
			continue
		}
		seen[m.ID] = struct{}{}
		out = append(out, m)
	}
	return out
}

// IDs returns the message identifiers of the batch, in batch order.
func (b Batch) IDs() []types.MsgID {
	ids := make([]types.MsgID, len(b))
	for i, m := range b {
		ids[i] = m.ID
	}
	return ids
}
