package wire

import (
	"testing"

	"modab/internal/types"
)

// benchmark batches mirror the paper's proposal shapes: M=4 messages of
// l bytes.
func benchBatch(l int) Batch {
	b := make(Batch, 4)
	for i := range b {
		b[i] = AppMsg{
			ID:   types.MsgID{Sender: types.ProcessID(i), Seq: uint64(i + 1)},
			Body: make([]byte, l),
		}
	}
	return b
}

func BenchmarkBatchMarshal16K(b *testing.B) {
	batch := benchBatch(16384)
	b.SetBytes(int64(batch.WireSize()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := NewWriter(batch.WireSize())
		batch.Marshal(w)
		if w.Len() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkBatchUnmarshal16K(b *testing.B) {
	batch := benchBatch(16384)
	w := NewWriter(batch.WireSize())
	batch.Marshal(w)
	data := w.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewReader(data)
		got := UnmarshalBatch(r)
		if len(got) != 4 || r.Err() != nil {
			b.Fatal("bad decode")
		}
	}
}

func BenchmarkBatchMarshalSmall(b *testing.B) {
	batch := benchBatch(64)
	b.SetBytes(int64(batch.WireSize()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := NewWriter(batch.WireSize())
		batch.Marshal(w)
	}
}

func BenchmarkBatchSortDeterministic(b *testing.B) {
	base := benchBatch(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		batch := make(Batch, len(base))
		copy(batch, base)
		batch.SortDeterministic()
	}
}
