package wire

import (
	"errors"
	"fmt"
	"hash/crc32"

	"modab/internal/types"
)

// Digest-ordering frame kinds. Under modab.WithDigestOrdering the sender
// disseminates a batch's payload bytes exactly once (FrameAnnounce through
// the internal/dissem seam), and consensus then orders only a compact
// Descriptor — so proposal/estimate/ack/decision frames stop scaling with
// payload size. FramePayloadFetch/FramePayloadResp repair the split: a
// process that decided a descriptor whose payload never arrived (lost
// announce, restart, snapshot install) refetches the bytes from a live
// holder before adelivering.
const (
	// FrameAnnounce carries one payload batch with its descriptor: the
	// one-time payload dissemination of digest ordering.
	FrameAnnounce uint8 = 8
	// FramePayloadFetch asks a peer for the payload batch of a descriptor
	// (decided-but-not-resident repair path).
	FramePayloadFetch uint8 = 9
	// FramePayloadResp answers FramePayloadFetch with the descriptor and
	// its payload batch, validated exactly like an announce.
	FramePayloadResp uint8 = 10
)

// ErrDigestMismatch indicates a descriptor whose payload batch does not
// match it: wrong message count, non-contiguous or foreign message IDs, or
// a CRC digest disagreement. Rejected at the wire layer so no engine ever
// ingests a payload under the wrong descriptor.
var ErrDigestMismatch = errors.New("wire: descriptor/payload mismatch")

// descriptorTable is the CRC-32C (Castagnoli) polynomial, matching the
// WAL's record checksums.
var descriptorTable = crc32.MakeTable(crc32.Castagnoli)

// Descriptor compactly identifies one disseminated payload batch: this is
// the unit digest ordering runs consensus on, a constant ~32 wire bytes no
// matter how many kilobytes the batch carries.
type Descriptor struct {
	// Origin is the process that sealed and disseminated the batch.
	Origin types.ProcessID
	// DSeq is the origin-assigned descriptor sequence number,
	// incarnation-tagged in its high 16 bits (like rbcast broadcast
	// numbering) so a restarted origin's re-announced backlog — possibly
	// regrouped into different batch boundaries — never collides with its
	// pre-crash descriptors.
	DSeq uint64
	// FirstSeq is the application sequence number of the batch's first
	// message; the batch covers [FirstSeq, FirstSeq+Count).
	FirstSeq uint64
	// Count is the number of messages in the batch (> 0).
	Count uint32
	// Digest is the CRC-32C over the batch's message bodies in batch
	// order.
	Digest uint32
}

// descriptorBodyBytes is the encoded descriptor body carried inside the
// pseudo application message consensus orders: FirstSeq + Count + Digest.
const descriptorBodyBytes = 8 + 4 + 4

// DSeqIncarnationShift splits a descriptor sequence number: the high 16
// bits carry the origin's boot count, the low 48 its per-incarnation
// counter — the same layout as the dissemination and rbcast numbering, and
// for the same reason (a restarted origin's regrouped descriptors must
// never collide with its pre-crash ones).
const DSeqIncarnationShift = 48

// BatchDigest returns the CRC-32C over the batch's message bodies in
// batch order.
func BatchDigest(b Batch) uint32 {
	var sum uint32
	for _, m := range b {
		sum = crc32.Update(sum, descriptorTable, m.Body)
	}
	return sum
}

// DescriptorFor builds the descriptor of a sealed single-origin batch with
// contiguous sequence numbers, the only batch shape digest ordering
// disseminates. dseq is the origin's incarnation-tagged descriptor
// sequence number.
func DescriptorFor(b Batch, dseq uint64) (Descriptor, error) {
	if err := validateShape(b); err != nil {
		return Descriptor{}, err
	}
	return Descriptor{
		Origin:   b[0].ID.Sender,
		DSeq:     dseq,
		FirstSeq: b[0].ID.Seq,
		Count:    uint32(len(b)),
		Digest:   BatchDigest(b),
	}, nil
}

// validateShape checks the single-origin contiguous-seq batch shape.
func validateShape(b Batch) error {
	if len(b) == 0 {
		return fmt.Errorf("%w: empty batch", ErrDigestMismatch)
	}
	origin, first := b[0].ID.Sender, b[0].ID.Seq
	for i, m := range b {
		if m.ID.Sender != origin || m.ID.Seq != first+uint64(i) {
			return fmt.Errorf("%w: message %d is %v, want (%v,%d)",
				ErrDigestMismatch, i, m.ID, origin, first+uint64(i))
		}
	}
	return nil
}

// Validate checks that batch b is exactly the payload the descriptor
// announces: matching count, contiguous IDs from (Origin, FirstSeq), and a
// matching CRC digest.
func (d Descriptor) Validate(b Batch) error {
	if uint32(len(b)) != d.Count {
		return fmt.Errorf("%w: %d messages, descriptor says %d", ErrDigestMismatch, len(b), d.Count)
	}
	if err := validateShape(b); err != nil {
		return err
	}
	if b[0].ID.Sender != d.Origin || b[0].ID.Seq != d.FirstSeq {
		return fmt.Errorf("%w: batch starts at (%v,%d), descriptor says (%v,%d)",
			ErrDigestMismatch, b[0].ID.Sender, b[0].ID.Seq, d.Origin, d.FirstSeq)
	}
	if sum := BatchDigest(b); sum != d.Digest {
		return fmt.Errorf("%w: digest %08x, descriptor says %08x", ErrDigestMismatch, sum, d.Digest)
	}
	return nil
}

// AppMsg encodes the descriptor as the pseudo application message
// consensus orders in digest mode: ID = (Origin, DSeq), body =
// FirstSeq|Count|Digest. The consensus layers stay payload-agnostic — they
// order it like any 16-byte message.
func (d Descriptor) AppMsg() AppMsg {
	w := NewWriter(descriptorBodyBytes)
	w.Uint64(d.FirstSeq)
	w.Uint32(d.Count)
	w.Uint32(d.Digest)
	return AppMsg{ID: types.MsgID{Sender: d.Origin, Seq: d.DSeq}, Body: w.Bytes()}
}

// ParseDescriptor decodes a descriptor pseudo-message produced by
// Descriptor.AppMsg.
func ParseDescriptor(m AppMsg) (Descriptor, error) {
	if len(m.Body) != descriptorBodyBytes {
		return Descriptor{}, fmt.Errorf("%w: descriptor body of %d bytes", ErrDigestMismatch, len(m.Body))
	}
	r := NewReader(m.Body)
	d := Descriptor{
		Origin:   m.ID.Sender,
		DSeq:     m.ID.Seq,
		FirstSeq: r.Uint64(),
		Count:    r.Uint32(),
		Digest:   r.Uint32(),
	}
	if d.Count == 0 {
		return Descriptor{}, fmt.Errorf("%w: zero-count descriptor", ErrDigestMismatch)
	}
	return d, nil
}

// marshalDescriptor appends the full descriptor (Origin and DSeq
// included — the framed forms stand alone, unlike the pseudo-message
// body).
func (d Descriptor) marshal(w *Writer) {
	w.Int32(int32(d.Origin))
	w.Uint64(d.DSeq)
	w.Uint64(d.FirstSeq)
	w.Uint32(d.Count)
	w.Uint32(d.Digest)
}

func unmarshalDescriptor(r *Reader) Descriptor {
	return Descriptor{
		Origin:   types.ProcessID(r.Int32()),
		DSeq:     r.Uint64(),
		FirstSeq: r.Uint64(),
		Count:    r.Uint32(),
		Digest:   r.Uint32(),
	}
}

// AppendAnnounceFrame appends a payload-announce frame: the descriptor
// followed by its payload batch. The caller must pass a batch the
// descriptor validates (DescriptorFor builds both together).
func AppendAnnounceFrame(w *Writer, d Descriptor, b Batch) {
	w.Uint8(FrameAnnounce)
	d.marshal(w)
	b.Marshal(w)
}

// AppendPayloadRespFrame appends a payload-fetch response: identical
// layout to an announce under its own kind byte, so receivers can tell a
// repair re-serve from first-time dissemination.
func AppendPayloadRespFrame(w *Writer, d Descriptor, b Batch) {
	w.Uint8(FramePayloadResp)
	d.marshal(w)
	b.Marshal(w)
}

// unmarshalDescriptorBatch decodes the shared announce/payload-resp
// layout, enforcing descriptor/payload consistency at the wire layer.
func unmarshalDescriptorBatch(data []byte, want uint8) (Descriptor, Batch, error) {
	r := NewReader(data)
	kind := r.Uint8()
	d := unmarshalDescriptor(r)
	b := UnmarshalBatch(r)
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return Descriptor{}, nil, err
	}
	if kind != want {
		return Descriptor{}, nil, fmt.Errorf("%w: %d", ErrBadFrame, kind)
	}
	if err := d.Validate(b); err != nil {
		return Descriptor{}, nil, err
	}
	return d, b, nil
}

// UnmarshalAnnounceFrame decodes and validates a FrameAnnounce payload
// (kind byte included). A batch that does not match its descriptor —
// count, ID range, or CRC digest — is rejected here, before any engine
// state is touched.
func UnmarshalAnnounceFrame(data []byte) (Descriptor, Batch, error) {
	return unmarshalDescriptorBatch(data, FrameAnnounce)
}

// UnmarshalPayloadRespFrame decodes and validates a FramePayloadResp
// payload (kind byte included).
func UnmarshalPayloadRespFrame(data []byte) (Descriptor, Batch, error) {
	return unmarshalDescriptorBatch(data, FramePayloadResp)
}

// AppendPayloadFetchFrame appends a payload-fetch request carrying the
// wanted descriptor.
func AppendPayloadFetchFrame(w *Writer, d Descriptor) {
	w.Uint8(FramePayloadFetch)
	d.marshal(w)
}

// UnmarshalPayloadFetch decodes a FramePayloadFetch payload (kind byte
// included).
func UnmarshalPayloadFetch(data []byte) (Descriptor, error) {
	r := NewReader(data)
	kind := r.Uint8()
	d := unmarshalDescriptor(r)
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return Descriptor{}, err
	}
	if kind != FramePayloadFetch {
		return Descriptor{}, fmt.Errorf("%w: %d", ErrBadFrame, kind)
	}
	if d.Count == 0 {
		return Descriptor{}, fmt.Errorf("%w: zero-count descriptor", ErrDigestMismatch)
	}
	return d, nil
}
