package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"modab/internal/types"
)

func digestBatch(origin types.ProcessID, first uint64, bodies ...string) Batch {
	b := make(Batch, 0, len(bodies))
	for i, body := range bodies {
		b = append(b, AppMsg{
			ID:   types.MsgID{Sender: origin, Seq: first + uint64(i)},
			Body: []byte(body),
		})
	}
	return b
}

func TestDescriptorPseudoMsgRoundTrip(t *testing.T) {
	b := digestBatch(3, 42, "a", "bb", "ccc")
	d, err := DescriptorFor(b, 5<<48|17)
	if err != nil {
		t.Fatalf("DescriptorFor: %v", err)
	}
	m := d.AppMsg()
	if m.ID.Sender != 3 || m.ID.Seq != 5<<48|17 {
		t.Fatalf("pseudo-message ID %v", m.ID)
	}
	got, err := ParseDescriptor(m)
	if err != nil {
		t.Fatalf("ParseDescriptor: %v", err)
	}
	if got != d {
		t.Fatalf("round-trip changed descriptor: %+v != %+v", got, d)
	}
}

func TestParseDescriptorRejectsBadBody(t *testing.T) {
	m := AppMsg{ID: types.MsgID{Sender: 1, Seq: 1}, Body: []byte("short")}
	if _, err := ParseDescriptor(m); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("want ErrDigestMismatch, got %v", err)
	}
}

func TestDescriptorForRejectsBadShapes(t *testing.T) {
	cases := map[string]Batch{
		"empty": nil,
		"gap": {
			{ID: types.MsgID{Sender: 1, Seq: 1}},
			{ID: types.MsgID{Sender: 1, Seq: 3}},
		},
		"mixed-origin": {
			{ID: types.MsgID{Sender: 1, Seq: 1}},
			{ID: types.MsgID{Sender: 2, Seq: 2}},
		},
	}
	for name, b := range cases {
		if _, err := DescriptorFor(b, 1); !errors.Is(err, ErrDigestMismatch) {
			t.Errorf("%s: want ErrDigestMismatch, got %v", name, err)
		}
	}
}

func TestAnnounceFrameRejectsMismatches(t *testing.T) {
	b := digestBatch(2, 10, "x", "y")
	d, _ := DescriptorFor(b, 9)

	// Count mismatch: descriptor claims more messages than the frame holds.
	bad := d
	bad.Count = 3
	var w1 Writer
	AppendAnnounceFrame(&w1, bad, b)
	if _, _, err := UnmarshalAnnounceFrame(w1.Bytes()); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("count mismatch: want ErrDigestMismatch, got %v", err)
	}

	// Digest mismatch: payload byte corrupted after sealing.
	corrupted := digestBatch(2, 10, "x", "z")
	var w2 Writer
	AppendAnnounceFrame(&w2, d, corrupted)
	if _, _, err := UnmarshalAnnounceFrame(w2.Bytes()); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("digest mismatch: want ErrDigestMismatch, got %v", err)
	}

	// Range mismatch: batch starts at the wrong seq.
	shifted := digestBatch(2, 11, "x", "y")
	var w3 Writer
	AppendAnnounceFrame(&w3, d, shifted)
	if _, _, err := UnmarshalAnnounceFrame(w3.Bytes()); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("range mismatch: want ErrDigestMismatch, got %v", err)
	}

	// Wrong kind byte for the decoder.
	var w4 Writer
	AppendPayloadRespFrame(&w4, d, b)
	if _, _, err := UnmarshalAnnounceFrame(w4.Bytes()); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("kind mismatch: want ErrBadFrame, got %v", err)
	}
}

func TestPayloadFetchRoundTrip(t *testing.T) {
	d := Descriptor{Origin: 4, DSeq: 2<<48 | 5, FirstSeq: 1000, Count: 64, Digest: 0xdeadbeef}
	var w Writer
	AppendPayloadFetchFrame(&w, d)
	got, err := UnmarshalPayloadFetch(w.Bytes())
	if err != nil {
		t.Fatalf("UnmarshalPayloadFetch: %v", err)
	}
	if got != d {
		t.Fatalf("round-trip changed descriptor: %+v != %+v", got, d)
	}
}

// TestDigestFrameRoundTripProperty is the digest round-trip property
// test: for randomly generated (seeded) contiguous batches, the
// descriptor+announce encode/decode cycle is the identity, and any
// single-byte corruption of the payload region is rejected.
func TestDigestFrameRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		origin := types.ProcessID(rng.Intn(7))
		first := rng.Uint64() % (1 << 40)
		n := 1 + rng.Intn(32)
		b := make(Batch, 0, n)
		for i := 0; i < n; i++ {
			body := make([]byte, rng.Intn(128))
			rng.Read(body)
			b = append(b, AppMsg{ID: types.MsgID{Sender: origin, Seq: first + uint64(i)}, Body: body})
		}
		dseq := rng.Uint64()
		d, err := DescriptorFor(b, dseq)
		if err != nil {
			t.Fatalf("trial %d: DescriptorFor: %v", trial, err)
		}
		if d.Validate(b) != nil {
			t.Fatalf("trial %d: fresh descriptor does not validate its batch", trial)
		}
		var w Writer
		AppendAnnounceFrame(&w, d, b)
		rd, rb, err := UnmarshalAnnounceFrame(w.Bytes())
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if rd != d || len(rb) != len(b) {
			t.Fatalf("trial %d: round-trip changed frame", trial)
		}
		for i := range b {
			if rb[i].ID != b[i].ID || !bytes.Equal(rb[i].Body, b[i].Body) {
				t.Fatalf("trial %d: message %d changed", trial, i)
			}
		}
		// Corrupt one payload byte (when there is one): must be rejected.
		if pb := b.PayloadBytes(); pb > 0 {
			mut := append([]byte(nil), w.Bytes()...)
			// Payload bodies are the trailing region; corrupt inside the
			// last body we can find deterministically: flip the final byte
			// of the frame if the last message has a body, else skip.
			last := b[len(b)-1]
			if len(last.Body) > 0 {
				mut[len(mut)-1] ^= 0x01
				if _, _, err := UnmarshalAnnounceFrame(mut); err == nil {
					t.Fatalf("trial %d: corrupted frame accepted", trial)
				}
			}
		}
	}
}
