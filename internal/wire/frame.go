package wire

import (
	"errors"
	"fmt"
)

// ErrBadFrame indicates a diffuse frame with an unknown kind tag.
var ErrBadFrame = errors.New("wire: unknown frame kind")

// Diffuse frame kinds: the first byte of an abcast diffusion payload
// selects between a single application message and a sender-side batch.
// The kind byte is one of the header bytes the paper's §5.2.2 data-volume
// analysis counts per layer; batching amortizes it (and every other
// per-frame header byte) over the messages of the batch.
const (
	// FrameAppMsg tags a frame carrying exactly one AppMsg.
	FrameAppMsg uint8 = 1
	// FrameBatch tags a frame carrying a count-prefixed Batch.
	FrameBatch uint8 = 2
)

// AppendMsgFrame appends a single-message diffuse frame to w: the kind
// tag followed by one AppMsg.
func AppendMsgFrame(w *Writer, m AppMsg) {
	w.Uint8(FrameAppMsg)
	m.Marshal(w)
}

// AppendBatchFrame appends a batch diffuse frame to w: the kind tag, a
// uint32 message count, then each message with its own length-prefixed
// body. The per-frame overhead (kind + count + the enclosing layer and
// transport headers) is paid once for the whole batch.
func AppendBatchFrame(w *Writer, b Batch) {
	w.Uint8(FrameBatch)
	b.Marshal(w)
}

// UnmarshalFrame decodes either diffuse frame kind into a Batch; a
// single-message frame decodes as a batch of one, so receivers process
// both shapes through one path.
func UnmarshalFrame(data []byte) (Batch, error) {
	r := NewReader(data)
	kind := r.Uint8()
	if err := r.Err(); err != nil {
		return nil, err
	}
	var b Batch
	switch kind {
	case FrameAppMsg:
		b = Batch{UnmarshalAppMsg(r)}
	case FrameBatch:
		b = UnmarshalBatch(r)
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadFrame, kind)
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return b, nil
}
