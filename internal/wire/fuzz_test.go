package wire

import (
	"bytes"
	"testing"

	"modab/internal/member"
	"modab/internal/types"
)

// FuzzUnmarshalFrame fuzzes the diffuse-frame decoder — the first parser
// every inbound abcast payload hits. It must never panic, and any frame
// it accepts must re-encode to an equivalent batch (decode/encode/decode
// fixpoint).
func FuzzUnmarshalFrame(f *testing.F) {
	// Seed corpus: one well-formed frame of each kind plus truncations and
	// a bad tag (testdata/fuzz adds crash-regression inputs on top).
	var w Writer
	AppendMsgFrame(&w, AppMsg{ID: types.MsgID{Sender: 1, Seq: 7}, Body: []byte("hello")})
	f.Add(append([]byte(nil), w.Bytes()...))
	var wb Writer
	AppendBatchFrame(&wb, Batch{
		{ID: types.MsgID{Sender: 0, Seq: 1}, Body: []byte("a")},
		{ID: types.MsgID{Sender: 2, Seq: 9}, Body: bytes.Repeat([]byte("x"), 300)},
	})
	f.Add(append([]byte(nil), wb.Bytes()...))
	f.Add(wb.Bytes()[:len(wb.Bytes())/2]) // torn batch
	f.Add([]byte{99, 0, 0})               // unknown kind
	f.Add([]byte{})
	// Relay-tagged frames: UnmarshalFrame must cleanly reject the ring
	// wrapper (kind 7) — engines peel it with UnmarshalRelayFrame first.
	var wr Writer
	AppendRelayFrame(&wr, RelayHeader{Origin: 1, Seq: 1<<48 + 3, Hops: 2}, w.Bytes())
	f.Add(append([]byte(nil), wr.Bytes()...))
	f.Add(wr.Bytes()[:relayHeaderBytes]) // relay header with torn-off inner
	// Digest-ordering frames (kinds 8-10): UnmarshalFrame must reject them
	// like any foreign kind — engines demultiplex them by FrameKind before
	// this decoder runs — and the decoder must survive their shapes.
	db := Batch{
		{ID: types.MsgID{Sender: 1, Seq: 5}, Body: []byte("p0")},
		{ID: types.MsgID{Sender: 1, Seq: 6}, Body: []byte("p1")},
	}
	dd, _ := DescriptorFor(db, 1<<48|9)
	var wa Writer
	AppendAnnounceFrame(&wa, dd, db)
	f.Add(append([]byte(nil), wa.Bytes()...))
	var wf Writer
	AppendPayloadFetchFrame(&wf, dd)
	f.Add(append([]byte(nil), wf.Bytes()...))
	var wp Writer
	AppendPayloadRespFrame(&wp, dd, db)
	f.Add(append([]byte(nil), wp.Bytes()...))
	f.Add(wa.Bytes()[:len(wa.Bytes())/2]) // torn announce
	// A batch frame carrying a descriptor pseudo-message (what consensus
	// actually orders in digest mode).
	var wdp Writer
	AppendBatchFrame(&wdp, Batch{dd.AppMsg()})
	f.Add(append([]byte(nil), wdp.Bytes()...))
	// Membership frames: config ops are magic-prefixed bodies riding
	// ordinary msg/batch frames — the decoder must survive their shapes
	// and torn variants (op decoding itself happens above the wire layer).
	addOp := member.EncodeOp(member.Op{Kind: member.OpAdd, Target: 3, BaseEpoch: 2, Addr: "10.0.0.4:7000"})
	var wm Writer
	AppendMsgFrame(&wm, AppMsg{ID: types.MsgID{Sender: 0, Seq: 12}, Body: addOp})
	f.Add(append([]byte(nil), wm.Bytes()...))
	rmOp := member.EncodeOp(member.Op{Kind: member.OpRemove, Target: 1, BaseEpoch: 7})
	var wmb Writer
	AppendBatchFrame(&wmb, Batch{
		{ID: types.MsgID{Sender: 2, Seq: 3}, Body: rmOp},
		{ID: types.MsgID{Sender: 2, Seq: 4}, Body: addOp[:len(addOp)-3]}, // torn op body
	})
	f.Add(append([]byte(nil), wmb.Bytes()...))

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := UnmarshalFrame(data)
		if err != nil {
			return
		}
		// Accepted frames round-trip: re-encode as a batch frame and
		// decode to the same messages.
		var rw Writer
		AppendBatchFrame(&rw, b)
		rb, rerr := UnmarshalFrame(rw.Bytes())
		if rerr != nil {
			t.Fatalf("re-encoded frame rejected: %v", rerr)
		}
		if len(rb) != len(b) {
			t.Fatalf("round-trip changed batch size: %d != %d", len(rb), len(b))
		}
		for i := range b {
			if rb[i].ID != b[i].ID || !bytes.Equal(rb[i].Body, b[i].Body) {
				t.Fatalf("round-trip changed message %d: %+v != %+v", i, rb[i], b[i])
			}
		}
	})
}

// FuzzDigestFrames fuzzes the digest-ordering frame decoders: announce,
// payload-fetch and payload-resp. They must never panic, any accepted
// announce/resp must satisfy descriptor validation by construction, and
// accepted frames must round-trip.
func FuzzDigestFrames(f *testing.F) {
	db := Batch{
		{ID: types.MsgID{Sender: 2, Seq: 100}, Body: []byte("alpha")},
		{ID: types.MsgID{Sender: 2, Seq: 101}, Body: bytes.Repeat([]byte("b"), 64)},
		{ID: types.MsgID{Sender: 2, Seq: 102}, Body: nil},
	}
	dd, _ := DescriptorFor(db, 3<<48|7)
	var wa Writer
	AppendAnnounceFrame(&wa, dd, db)
	f.Add(append([]byte(nil), wa.Bytes()...))
	var wp Writer
	AppendPayloadRespFrame(&wp, dd, db)
	f.Add(append([]byte(nil), wp.Bytes()...))
	var wf Writer
	AppendPayloadFetchFrame(&wf, dd)
	f.Add(append([]byte(nil), wf.Bytes()...))
	// Corrupted digest: flip a payload byte after framing — the decoder
	// must reject the CRC mismatch.
	corrupt := append([]byte(nil), wa.Bytes()...)
	corrupt[len(corrupt)-10] ^= 0xff
	f.Add(corrupt)
	f.Add(wa.Bytes()[:24]) // torn descriptor
	f.Add([]byte{FrameAnnounce})
	f.Add([]byte{FramePayloadFetch, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		if d, b, err := UnmarshalAnnounceFrame(data); err == nil {
			if verr := d.Validate(b); verr != nil {
				t.Fatalf("accepted announce fails validation: %v", verr)
			}
			var w Writer
			AppendAnnounceFrame(&w, d, b)
			rd, rb, rerr := UnmarshalAnnounceFrame(w.Bytes())
			if rerr != nil {
				t.Fatalf("re-encoded announce rejected: %v", rerr)
			}
			if rd != d || len(rb) != len(b) {
				t.Fatalf("announce round-trip changed: %+v != %+v", rd, d)
			}
		}
		if d, b, err := UnmarshalPayloadRespFrame(data); err == nil {
			var w Writer
			AppendPayloadRespFrame(&w, d, b)
			if _, _, rerr := UnmarshalPayloadRespFrame(w.Bytes()); rerr != nil {
				t.Fatalf("re-encoded payload-resp rejected: %v", rerr)
			}
		}
		if d, err := UnmarshalPayloadFetch(data); err == nil {
			var w Writer
			AppendPayloadFetchFrame(&w, d)
			rd, rerr := UnmarshalPayloadFetch(w.Bytes())
			if rerr != nil {
				t.Fatalf("re-encoded payload-fetch rejected: %v", rerr)
			}
			if rd != d {
				t.Fatalf("payload-fetch round-trip changed: %+v != %+v", rd, d)
			}
		}
	})
}

// FuzzRecoverFrames fuzzes the state-transfer frame decoders the
// crash-recovery protocol exposes to the network.
func FuzzRecoverFrames(f *testing.F) {
	var wq Writer
	AppendRecoverReqFrame(&wq, RecoverReq{From: 42})
	f.Add(append([]byte(nil), wq.Bytes()...))
	var wr Writer
	AppendRecoverRespFrame(&wr, RecoverResp{UpTo: 7, Decisions: []DecidedInstance{
		{K: 6, Batch: Batch{{ID: types.MsgID{Sender: 1, Seq: 3}, Body: []byte("d")}}},
	}})
	f.Add(append([]byte(nil), wr.Bytes()...))
	f.Add([]byte{byte(FrameRecoverReq)})
	f.Add([]byte{byte(FrameRecoverResp), 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := UnmarshalRecoverReq(data); err == nil {
			var w Writer
			AppendRecoverReqFrame(&w, req)
			if _, err := UnmarshalRecoverReq(w.Bytes()); err != nil {
				t.Fatalf("re-encoded recover-req rejected: %v", err)
			}
		}
		if resp, err := UnmarshalRecoverResp(data); err == nil {
			var w Writer
			AppendRecoverRespFrame(&w, resp)
			if _, err := UnmarshalRecoverResp(w.Bytes()); err != nil {
				t.Fatalf("re-encoded recover-resp rejected: %v", err)
			}
		}
	})
}
