package wire

import (
	"bytes"
	"testing"

	"modab/internal/types"
)

// FuzzUnmarshalFrame fuzzes the diffuse-frame decoder — the first parser
// every inbound abcast payload hits. It must never panic, and any frame
// it accepts must re-encode to an equivalent batch (decode/encode/decode
// fixpoint).
func FuzzUnmarshalFrame(f *testing.F) {
	// Seed corpus: one well-formed frame of each kind plus truncations and
	// a bad tag (testdata/fuzz adds crash-regression inputs on top).
	var w Writer
	AppendMsgFrame(&w, AppMsg{ID: types.MsgID{Sender: 1, Seq: 7}, Body: []byte("hello")})
	f.Add(append([]byte(nil), w.Bytes()...))
	var wb Writer
	AppendBatchFrame(&wb, Batch{
		{ID: types.MsgID{Sender: 0, Seq: 1}, Body: []byte("a")},
		{ID: types.MsgID{Sender: 2, Seq: 9}, Body: bytes.Repeat([]byte("x"), 300)},
	})
	f.Add(append([]byte(nil), wb.Bytes()...))
	f.Add(wb.Bytes()[:len(wb.Bytes())/2]) // torn batch
	f.Add([]byte{99, 0, 0})               // unknown kind
	f.Add([]byte{})
	// Relay-tagged frames: UnmarshalFrame must cleanly reject the ring
	// wrapper (kind 7) — engines peel it with UnmarshalRelayFrame first.
	var wr Writer
	AppendRelayFrame(&wr, RelayHeader{Origin: 1, Seq: 1<<48 + 3, Hops: 2}, w.Bytes())
	f.Add(append([]byte(nil), wr.Bytes()...))
	f.Add(wr.Bytes()[:relayHeaderBytes]) // relay header with torn-off inner

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := UnmarshalFrame(data)
		if err != nil {
			return
		}
		// Accepted frames round-trip: re-encode as a batch frame and
		// decode to the same messages.
		var rw Writer
		AppendBatchFrame(&rw, b)
		rb, rerr := UnmarshalFrame(rw.Bytes())
		if rerr != nil {
			t.Fatalf("re-encoded frame rejected: %v", rerr)
		}
		if len(rb) != len(b) {
			t.Fatalf("round-trip changed batch size: %d != %d", len(rb), len(b))
		}
		for i := range b {
			if rb[i].ID != b[i].ID || !bytes.Equal(rb[i].Body, b[i].Body) {
				t.Fatalf("round-trip changed message %d: %+v != %+v", i, rb[i], b[i])
			}
		}
	})
}

// FuzzRecoverFrames fuzzes the state-transfer frame decoders the
// crash-recovery protocol exposes to the network.
func FuzzRecoverFrames(f *testing.F) {
	var wq Writer
	AppendRecoverReqFrame(&wq, RecoverReq{From: 42})
	f.Add(append([]byte(nil), wq.Bytes()...))
	var wr Writer
	AppendRecoverRespFrame(&wr, RecoverResp{UpTo: 7, Decisions: []DecidedInstance{
		{K: 6, Batch: Batch{{ID: types.MsgID{Sender: 1, Seq: 3}, Body: []byte("d")}}},
	}})
	f.Add(append([]byte(nil), wr.Bytes()...))
	f.Add([]byte{byte(FrameRecoverReq)})
	f.Add([]byte{byte(FrameRecoverResp), 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := UnmarshalRecoverReq(data); err == nil {
			var w Writer
			AppendRecoverReqFrame(&w, req)
			if _, err := UnmarshalRecoverReq(w.Bytes()); err != nil {
				t.Fatalf("re-encoded recover-req rejected: %v", err)
			}
		}
		if resp, err := UnmarshalRecoverResp(data); err == nil {
			var w Writer
			AppendRecoverRespFrame(&w, resp)
			if _, err := UnmarshalRecoverResp(w.Bytes()); err != nil {
				t.Fatalf("re-encoded recover-resp rejected: %v", err)
			}
		}
	})
}
