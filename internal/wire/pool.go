package wire

import "sync"

// maxPooledWriter bounds the capacity of buffers kept in the pool: an
// occasional giant frame (up to MaxChunk) must not pin megabytes of
// scratch forever. Oversized writers are simply dropped on PutWriter.
const maxPooledWriter = 1 << 20

// writerPool recycles Writer buffers across encode calls. The hot encode
// path — diffuse frames, batch frames, engine messages — marshals into a
// pooled writer, hands the bytes to a copying consumer, and returns the
// writer, so steady-state encoding allocates nothing.
var writerPool = sync.Pool{New: func() any { return new(Writer) }}

// GetWriter returns a pooled Writer with at least size bytes of capacity.
// Pair it with PutWriter once the encoded bytes have been consumed.
func GetWriter(size int) *Writer {
	w := writerPool.Get().(*Writer)
	if cap(w.buf) < size {
		w.buf = make([]byte, 0, size)
	}
	return w
}

// PutWriter resets w and returns it to the pool. The caller must not use
// w — or any slice previously obtained from w.Bytes() — afterwards; hand
// the bytes only to consumers that copy before returning (the stack's
// NetSend/NetSendAll and the transports do).
func PutWriter(w *Writer) {
	if cap(w.buf) > maxPooledWriter {
		return
	}
	w.Reset()
	writerPool.Put(w)
}

// Reset truncates the Writer for reuse, keeping its capacity.
func (w *Writer) Reset() { w.buf = w.buf[:0] }
