package wire

import "fmt"

// State-transfer frame kinds (crash-recovery subsystem). They share the
// diffuse-frame kind-byte namespace (FrameAppMsg, FrameBatch) so the
// abcast layer demultiplexes all of its traffic through one leading byte;
// the monolithic stack carries the same payloads inside its own message
// types.
const (
	// FrameRecoverReq asks a peer for decided instances starting at a
	// given instance number: a restarting node announcing itself.
	FrameRecoverReq uint8 = 3
	// FrameRecoverResp answers with the responder's decided horizon and a
	// chunk of contiguous decided instances.
	FrameRecoverResp uint8 = 4
)

// DecidedInstance is one decided consensus instance as persisted in the
// write-ahead log and shipped during state transfer.
type DecidedInstance struct {
	K     uint64
	Batch Batch
}

// RecoverReq is the decoded form of a FrameRecoverReq.
type RecoverReq struct {
	// From is the lowest instance the requester is missing
	// (its decided watermark + 1).
	From uint64
}

// RecoverResp is the decoded form of a FrameRecoverResp.
type RecoverResp struct {
	// UpTo is the responder's highest contiguously decided instance.
	UpTo uint64
	// SnapIndex is the index of the responder's latest durable snapshot
	// (0 = none). A requester that gets no decisions but a SnapIndex at or
	// above its missing instance switches to snapshot state transfer
	// (FrameSnapReq) — the responder truncated its log below the horizon.
	SnapIndex uint64
	// Decisions is a contiguous run of decided instances starting at the
	// requested From (possibly empty when the responder cannot serve it).
	Decisions []DecidedInstance
}

// AppendRecoverReqFrame appends a state-transfer request frame to w.
func AppendRecoverReqFrame(w *Writer, req RecoverReq) {
	w.Uint8(FrameRecoverReq)
	w.Uint64(req.From)
}

// AppendRecoverRespFrame appends a state-transfer response frame to w.
func AppendRecoverRespFrame(w *Writer, resp RecoverResp) {
	w.Uint8(FrameRecoverResp)
	w.Uint64(resp.UpTo)
	w.Uint64(resp.SnapIndex)
	w.Uint32(uint32(len(resp.Decisions)))
	for _, d := range resp.Decisions {
		d.Marshal(w)
	}
}

// Marshal appends one decided instance to w.
func (d DecidedInstance) Marshal(w *Writer) {
	w.Uint64(d.K)
	d.Batch.Marshal(w)
}

// WireSize returns the encoded size of the decided instance in bytes.
func (d DecidedInstance) WireSize() int { return 8 + d.Batch.WireSize() }

// UnmarshalDecidedInstance reads one decided instance from r.
func UnmarshalDecidedInstance(r *Reader) DecidedInstance {
	var d DecidedInstance
	d.K = r.Uint64()
	d.Batch = UnmarshalBatch(r)
	return d
}

// UnmarshalRecoverReq decodes a FrameRecoverReq payload (kind byte
// included).
func UnmarshalRecoverReq(data []byte) (RecoverReq, error) {
	r := NewReader(data)
	if kind := r.Uint8(); r.Err() == nil && kind != FrameRecoverReq {
		return RecoverReq{}, fmt.Errorf("%w: %d", ErrBadFrame, kind)
	}
	req := RecoverReq{From: r.Uint64()}
	r.ExpectEOF()
	return req, r.Err()
}

// UnmarshalRecoverResp decodes a FrameRecoverResp payload (kind byte
// included).
func UnmarshalRecoverResp(data []byte) (RecoverResp, error) {
	r := NewReader(data)
	if kind := r.Uint8(); r.Err() == nil && kind != FrameRecoverResp {
		return RecoverResp{}, fmt.Errorf("%w: %d", ErrBadFrame, kind)
	}
	resp := RecoverResp{UpTo: r.Uint64(), SnapIndex: r.Uint64()}
	n := r.Uint32()
	if r.Err() != nil {
		return RecoverResp{}, r.Err()
	}
	if n > MaxChunk/appMsgHeaderBytes {
		return RecoverResp{}, fmt.Errorf("%w: %d decisions", ErrTooLarge, n)
	}
	resp.Decisions = make([]DecidedInstance, 0, n)
	for i := uint32(0); i < n; i++ {
		resp.Decisions = append(resp.Decisions, UnmarshalDecidedInstance(r))
		if r.Err() != nil {
			return RecoverResp{}, r.Err()
		}
	}
	r.ExpectEOF()
	return resp, r.Err()
}

// FrameKind returns the leading kind byte of a diffuse/state-transfer
// frame (0 for an empty frame).
func FrameKind(data []byte) uint8 {
	if len(data) == 0 {
		return 0
	}
	return data[0]
}
