package wire

import (
	"errors"
	"fmt"

	"modab/internal/types"
)

// FrameRelay tags a diffuse frame traveling along a ring (or any
// successor-relay) dissemination topology instead of being broadcast by
// its origin: a relay header — origin process, origin-assigned sequence
// number, hop count — followed by exactly one ordinary diffuse frame
// (FrameAppMsg or FrameBatch). The header is what lets every process
// dedup-suppress a frame that laps the ring and decide whether to keep
// relaying (see internal/dissem).
const FrameRelay uint8 = 7

// ErrBadRelay indicates a structurally invalid relay frame: wrong kind
// tag, a nested relay frame, or an empty inner frame.
var ErrBadRelay = errors.New("wire: bad relay frame")

// RelayHeader identifies one relayed diffuse frame.
type RelayHeader struct {
	// Origin is the process that first spread the frame.
	Origin types.ProcessID
	// Seq is the origin-assigned dissemination sequence number,
	// incarnation-tagged in its high 16 bits exactly like the modular
	// rbcast's broadcast numbering, so a restarted origin's fresh
	// numbering is never mistaken for duplicates of its pre-crash
	// traffic.
	Seq uint64
	// Hops counts relay transmissions so far (0 at the origin); relayers
	// stop forwarding once Hops reaches the group size, bounding any
	// frame's lifetime even under membership disagreement.
	Hops uint8
}

// relayHeaderBytes is the encoded header size: kind + origin + seq + hops.
const relayHeaderBytes = 1 + 4 + 8 + 1

// AppendRelayFrame appends a relay frame to w: the kind tag, the header,
// then the inner diffuse frame verbatim. The inner frame must itself be
// a non-relay diffuse frame; nesting is a protocol error.
func AppendRelayFrame(w *Writer, h RelayHeader, inner []byte) {
	w.Uint8(FrameRelay)
	w.Int32(int32(h.Origin))
	w.Uint64(h.Seq)
	w.Uint8(h.Hops)
	w.Raw(inner)
}

// UnmarshalRelayFrame decodes a relay frame into its header and the
// inner diffuse frame bytes (aliasing data, not copied). The inner frame
// is validated only for non-emptiness and non-nesting; callers decode it
// with UnmarshalFrame.
func UnmarshalRelayFrame(data []byte) (RelayHeader, []byte, error) {
	r := NewReader(data)
	kind := r.Uint8()
	var h RelayHeader
	h.Origin = types.ProcessID(r.Int32())
	h.Seq = r.Uint64()
	h.Hops = r.Uint8()
	inner := r.Rest()
	if err := r.Err(); err != nil {
		return RelayHeader{}, nil, err
	}
	if kind != FrameRelay {
		return RelayHeader{}, nil, fmt.Errorf("%w: kind %d", ErrBadRelay, kind)
	}
	if len(inner) == 0 {
		return RelayHeader{}, nil, fmt.Errorf("%w: empty inner frame", ErrBadRelay)
	}
	if FrameKind(inner) == FrameRelay {
		return RelayHeader{}, nil, fmt.Errorf("%w: nested relay", ErrBadRelay)
	}
	return h, inner, nil
}
