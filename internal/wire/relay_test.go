package wire

import (
	"bytes"
	"errors"
	"testing"

	"modab/internal/types"
)

// TestRelayFrameRoundTrip pins marshal∘unmarshal = id for the relay
// header over representative corner values, with both inner frame kinds.
func TestRelayFrameRoundTrip(t *testing.T) {
	var inner Writer
	AppendBatchFrame(&inner, Batch{
		{ID: types.MsgID{Sender: 2, Seq: 5}, Body: []byte("relayed")},
	})
	headers := []RelayHeader{
		{Origin: 0, Seq: 1, Hops: 0},
		{Origin: 15, Seq: 1<<48 + 42, Hops: 3}, // incarnation-tagged seq
		{Origin: 3, Seq: ^uint64(0), Hops: 255},
	}
	for _, h := range headers {
		var w Writer
		AppendRelayFrame(&w, h, inner.Bytes())
		if FrameKind(w.Bytes()) != FrameRelay {
			t.Fatalf("relay frame kind = %d, want %d", FrameKind(w.Bytes()), FrameRelay)
		}
		gh, gi, err := UnmarshalRelayFrame(w.Bytes())
		if err != nil {
			t.Fatalf("UnmarshalRelayFrame(%+v): %v", h, err)
		}
		if gh != h {
			t.Fatalf("header round-trip changed %+v into %+v", h, gh)
		}
		if !bytes.Equal(gi, inner.Bytes()) {
			t.Fatalf("inner frame round-trip changed bytes for %+v", h)
		}
		// The inner frame decodes with the ordinary diffuse decoder.
		b, err := UnmarshalFrame(gi)
		if err != nil || len(b) != 1 || !bytes.Equal(b[0].Body, []byte("relayed")) {
			t.Fatalf("inner frame decode = %v, %v", b, err)
		}
	}
}

// TestUnmarshalRelayFrameRejects covers the structural error paths:
// truncation, wrong kind, empty inner frame, nested relay.
func TestUnmarshalRelayFrameRejects(t *testing.T) {
	var inner Writer
	AppendMsgFrame(&inner, AppMsg{ID: types.MsgID{Sender: 1, Seq: 1}, Body: []byte("x")})
	var good Writer
	AppendRelayFrame(&good, RelayHeader{Origin: 1, Seq: 1}, inner.Bytes())

	for i := 0; i < relayHeaderBytes; i++ {
		if _, _, err := UnmarshalRelayFrame(good.Bytes()[:i]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", i)
		}
	}
	// The full header with no inner frame is rejected too.
	if _, _, err := UnmarshalRelayFrame(good.Bytes()[:relayHeaderBytes]); !errors.Is(err, ErrBadRelay) {
		t.Fatalf("empty inner frame: %v, want ErrBadRelay", err)
	}
	wrong := append([]byte(nil), good.Bytes()...)
	wrong[0] = FrameBatch
	if _, _, err := UnmarshalRelayFrame(wrong); !errors.Is(err, ErrBadRelay) {
		t.Fatalf("wrong kind: %v, want ErrBadRelay", err)
	}
	var nested Writer
	AppendRelayFrame(&nested, RelayHeader{Origin: 2, Seq: 2}, good.Bytes())
	if _, _, err := UnmarshalRelayFrame(nested.Bytes()); !errors.Is(err, ErrBadRelay) {
		t.Fatalf("nested relay: %v, want ErrBadRelay", err)
	}
	// The plain diffuse decoder refuses relay frames outright (engines
	// route them by kind before ever calling UnmarshalFrame).
	if _, err := UnmarshalFrame(good.Bytes()); err == nil {
		t.Fatal("UnmarshalFrame accepted a relay frame")
	}
}

// FuzzRelayFrame fuzzes the relay decoder: it must never panic, and any
// frame it accepts must re-encode to identical header and inner bytes.
func FuzzRelayFrame(f *testing.F) {
	var inner Writer
	AppendMsgFrame(&inner, AppMsg{ID: types.MsgID{Sender: 1, Seq: 7}, Body: []byte("hello")})
	var w Writer
	AppendRelayFrame(&w, RelayHeader{Origin: 2, Seq: 1<<48 + 9, Hops: 1}, inner.Bytes())
	f.Add(append([]byte(nil), w.Bytes()...))
	f.Add(w.Bytes()[:len(w.Bytes())-3]) // torn inner frame
	f.Add(w.Bytes()[:relayHeaderBytes]) // header only
	f.Add([]byte{FrameRelay})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		h, in, err := UnmarshalRelayFrame(data)
		if err != nil {
			return
		}
		var rw Writer
		AppendRelayFrame(&rw, h, in)
		rh, rin, rerr := UnmarshalRelayFrame(rw.Bytes())
		if rerr != nil {
			t.Fatalf("re-encoded relay frame rejected: %v", rerr)
		}
		if rh != h || !bytes.Equal(rin, in) {
			t.Fatalf("round-trip changed relay frame: %+v/%x != %+v/%x", rh, rin, h, in)
		}
	})
}
