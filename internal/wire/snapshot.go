package wire

import "fmt"

// Snapshot state-transfer frame kinds. They extend the recover-frame
// namespace: a rebooting node that is too far behind to be served
// instance-by-instance (its peers truncated their logs below the
// snapshot horizon) fetches the newest snapshot in chunks, installs it,
// and only then resumes the per-instance catch-up of FrameRecoverReq.
const (
	// FrameSnapReq asks a peer for one chunk of its snapshot at a given
	// index, starting at a byte offset.
	FrameSnapReq uint8 = 5
	// FrameSnapResp answers with the chunk plus enough metadata for the
	// requester to detect completion and index changes mid-transfer.
	FrameSnapResp uint8 = 6
)

// SnapChunk is the chunk size of snapshot state transfer (256 KiB): small
// enough to interleave with protocol traffic, large enough that a
// realistic state machine ships in a handful of round trips.
const SnapChunk = 256 << 10

// SnapReq is the decoded form of a FrameSnapReq.
type SnapReq struct {
	// Index is the snapshot the requester is fetching (learned from
	// RecoverResp.SnapIndex).
	Index uint64
	// Offset is the byte offset of the requested chunk.
	Offset uint64
}

// SnapResp is the decoded form of a FrameSnapResp.
type SnapResp struct {
	// Index is the snapshot actually served. When the responder has moved
	// to a newer snapshot mid-transfer it serves that one instead and the
	// requester restarts from offset 0.
	Index uint64
	// Total is the full encoded envelope size in bytes (0 when the
	// responder no longer has a snapshot to serve).
	Total uint64
	// Offset echoes the chunk's byte offset.
	Offset uint64
	// UpTo is the responder's highest contiguously decided instance, so
	// the requester can keep its catch-up target fresh.
	UpTo uint64
	// Data is the chunk (empty when the responder cannot serve).
	Data []byte
}

// AppendSnapReqFrame appends a snapshot-chunk request frame to w.
func AppendSnapReqFrame(w *Writer, req SnapReq) {
	w.Uint8(FrameSnapReq)
	w.Uint64(req.Index)
	w.Uint64(req.Offset)
}

// AppendSnapRespFrame appends a snapshot-chunk response frame to w.
func AppendSnapRespFrame(w *Writer, resp SnapResp) {
	w.Uint8(FrameSnapResp)
	w.Uint64(resp.Index)
	w.Uint64(resp.Total)
	w.Uint64(resp.Offset)
	w.Uint64(resp.UpTo)
	w.Bytes32(resp.Data)
}

// UnmarshalSnapReq decodes a FrameSnapReq payload (kind byte included).
func UnmarshalSnapReq(data []byte) (SnapReq, error) {
	r := NewReader(data)
	if kind := r.Uint8(); r.Err() == nil && kind != FrameSnapReq {
		return SnapReq{}, fmt.Errorf("%w: %d", ErrBadFrame, kind)
	}
	req := SnapReq{Index: r.Uint64(), Offset: r.Uint64()}
	r.ExpectEOF()
	return req, r.Err()
}

// UnmarshalSnapResp decodes a FrameSnapResp payload (kind byte included).
func UnmarshalSnapResp(data []byte) (SnapResp, error) {
	r := NewReader(data)
	if kind := r.Uint8(); r.Err() == nil && kind != FrameSnapResp {
		return SnapResp{}, fmt.Errorf("%w: %d", ErrBadFrame, kind)
	}
	resp := SnapResp{Index: r.Uint64(), Total: r.Uint64(), Offset: r.Uint64(), UpTo: r.Uint64()}
	resp.Data = r.Bytes32()
	r.ExpectEOF()
	return resp, r.Err()
}

// SnapshotEnvelope is the logical content of one snapshot: the state
// machine's bytes at an instance boundary plus the delivered-dedup state
// at that same boundary. Shipping the dedup state matters: without it, a
// node whose own message was ordered at or below Index but who crashed
// before persisting that decision would re-propose it after install and
// apply it twice. The envelope is what the snapshot store persists and
// what state transfer ships; the codec lives here (not in the recovery
// package) so the engines can decode it without an import cycle.
type SnapshotEnvelope struct {
	// Index is the highest instance whose deliveries are folded into
	// State: the snapshot covers exactly instances [1, Index].
	Index uint64
	// Dedup is the marshaled delivered-map (internal/dedup) at Index,
	// opaque at this layer.
	Dedup []byte
	// State is the state machine's own serialization.
	State []byte
}

// Marshal appends the envelope to w.
func (e SnapshotEnvelope) Marshal(w *Writer) {
	w.Uint64(e.Index)
	w.Bytes32(e.Dedup)
	w.Bytes32(e.State)
}

// WireSize returns the encoded size of the envelope in bytes.
func (e SnapshotEnvelope) WireSize() int { return 8 + 4 + len(e.Dedup) + 4 + len(e.State) }

// UnmarshalSnapshotEnvelope decodes a snapshot envelope.
func UnmarshalSnapshotEnvelope(data []byte) (SnapshotEnvelope, error) {
	r := NewReader(data)
	e := SnapshotEnvelope{Index: r.Uint64()}
	e.Dedup = r.Bytes32()
	e.State = r.Bytes32()
	r.ExpectEOF()
	return e, r.Err()
}
