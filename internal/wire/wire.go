// Package wire implements the binary codec used by every protocol layer.
//
// The codec is deliberately explicit: no reflection, fixed-width integers,
// length-prefixed byte strings. Every layer of the modular stack marshals
// its own header around the payload handed down by the layer above, so the
// number of header bytes on the wire grows with the number of composed
// layers — one of the costs of modularity measured by the paper.
//
// Writer and Reader carry a sticky error: after the first failure all
// subsequent operations are no-ops, so call sites check the error once at
// the end (the bufio.Scanner idiom).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Codec errors.
var (
	// ErrShortBuffer indicates a truncated message.
	ErrShortBuffer = errors.New("wire: short buffer")
	// ErrTooLarge indicates a length prefix exceeding sane bounds.
	ErrTooLarge = errors.New("wire: length prefix too large")
	// ErrTrailing indicates unconsumed trailing bytes where none were expected.
	ErrTrailing = errors.New("wire: trailing bytes")
)

// MaxChunk bounds any single length-prefixed chunk (64 MiB). The paper's
// workloads top out at 32 KiB payloads; the bound exists to fail fast on
// corrupt frames rather than allocate absurd buffers.
const MaxChunk = 64 << 20

// Writer appends big-endian binary data to a buffer.
// The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with capacity pre-allocated for size bytes.
func NewWriter(size int) *Writer {
	return &Writer{buf: make([]byte, 0, size)}
}

// Bytes returns the accumulated buffer. The buffer is owned by the Writer
// until the caller takes it; callers that retain it must not reuse the
// Writer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Uint8 appends one byte.
func (w *Writer) Uint8(v uint8) { w.buf = append(w.buf, v) }

// Uint16 appends a big-endian uint16.
func (w *Writer) Uint16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }

// Uint32 appends a big-endian uint32.
func (w *Writer) Uint32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }

// Uint64 appends a big-endian uint64.
func (w *Writer) Uint64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }

// Int32 appends a big-endian int32 (two's complement).
func (w *Writer) Int32(v int32) { w.Uint32(uint32(v)) }

// Int64 appends a big-endian int64 (two's complement).
func (w *Writer) Int64(v int64) { w.Uint64(uint64(v)) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.Uint8(1)
	} else {
		w.Uint8(0)
	}
}

// Bytes32 appends a uint32 length prefix followed by the bytes.
func (w *Writer) Bytes32(b []byte) {
	w.Uint32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// Raw appends bytes with no length prefix. Used for nesting an
// already-marshaled inner message as the tail of an outer one.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Reader consumes big-endian binary data from a buffer with a sticky error.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over buf. The Reader does not copy buf;
// callers must not mutate it while reading.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first error encountered, or nil.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.buf) - r.off }

// fail records the first error.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.Len() < n {
		r.fail(fmt.Errorf("%w: need %d bytes, have %d", ErrShortBuffer, n, r.Len()))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Uint8 reads one byte.
func (r *Reader) Uint8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Uint16 reads a big-endian uint16.
func (r *Reader) Uint16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// Uint32 reads a big-endian uint32.
func (r *Reader) Uint32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// Uint64 reads a big-endian uint64.
func (r *Reader) Uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Int32 reads a big-endian int32.
func (r *Reader) Int32() int32 { return int32(r.Uint32()) }

// Int64 reads a big-endian int64.
func (r *Reader) Int64() int64 { return int64(r.Uint64()) }

// Bool reads a boolean encoded as one byte. Any nonzero value is true.
func (r *Reader) Bool() bool { return r.Uint8() != 0 }

// Bytes32 reads a uint32 length prefix followed by that many bytes.
// The returned slice is a copy, safe to retain.
func (r *Reader) Bytes32() []byte {
	n := r.Uint32()
	if r.err != nil {
		return nil
	}
	if n > MaxChunk {
		r.fail(fmt.Errorf("%w: %d bytes", ErrTooLarge, n))
		return nil
	}
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// Rest returns all unread bytes without copying and advances to the end.
// Used to extract a nested inner message.
func (r *Reader) Rest() []byte {
	if r.err != nil {
		return nil
	}
	b := r.buf[r.off:]
	r.off = len(r.buf)
	return b
}

// ExpectEOF records ErrTrailing if unread bytes remain.
func (r *Reader) ExpectEOF() {
	if r.err == nil && r.Len() != 0 {
		r.fail(fmt.Errorf("%w: %d bytes", ErrTrailing, r.Len()))
	}
}
