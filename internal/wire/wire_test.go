package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"modab/internal/types"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.Uint8(0xAB)
	w.Uint16(0xCDEF)
	w.Uint32(0xDEADBEEF)
	w.Uint64(0x0123456789ABCDEF)
	w.Int32(-42)
	w.Int64(-1 << 40)
	w.Bool(true)
	w.Bool(false)
	w.Bytes32([]byte("hello"))
	w.Raw([]byte{1, 2, 3})

	r := NewReader(w.Bytes())
	if got := r.Uint8(); got != 0xAB {
		t.Errorf("Uint8 = %#x", got)
	}
	if got := r.Uint16(); got != 0xCDEF {
		t.Errorf("Uint16 = %#x", got)
	}
	if got := r.Uint32(); got != 0xDEADBEEF {
		t.Errorf("Uint32 = %#x", got)
	}
	if got := r.Uint64(); got != 0x0123456789ABCDEF {
		t.Errorf("Uint64 = %#x", got)
	}
	if got := r.Int32(); got != -42 {
		t.Errorf("Int32 = %d", got)
	}
	if got := r.Int64(); got != -1<<40 {
		t.Errorf("Int64 = %d", got)
	}
	if got := r.Bool(); got != true {
		t.Errorf("Bool = %v", got)
	}
	if got := r.Bool(); got != false {
		t.Errorf("Bool = %v", got)
	}
	if got := r.Bytes32(); !bytes.Equal(got, []byte("hello")) {
		t.Errorf("Bytes32 = %q", got)
	}
	if got := r.Rest(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Rest = %v", got)
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestReaderShortBuffer(t *testing.T) {
	r := NewReader([]byte{1, 2})
	_ = r.Uint32()
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Fatalf("want ErrShortBuffer, got %v", r.Err())
	}
	// Sticky: further reads return zero values, error is preserved.
	if got := r.Uint64(); got != 0 {
		t.Errorf("read after error = %d", got)
	}
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Fatalf("error not sticky: %v", r.Err())
	}
}

func TestReaderTrailing(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	_ = r.Uint8()
	r.ExpectEOF()
	if !errors.Is(r.Err(), ErrTrailing) {
		t.Fatalf("want ErrTrailing, got %v", r.Err())
	}
}

func TestBytes32TooLarge(t *testing.T) {
	w := NewWriter(8)
	w.Uint32(MaxChunk + 1)
	r := NewReader(w.Bytes())
	_ = r.Bytes32()
	if !errors.Is(r.Err(), ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", r.Err())
	}
}

func TestBytes32CopyIsSafe(t *testing.T) {
	w := NewWriter(16)
	w.Bytes32([]byte{9, 9, 9})
	buf := w.Bytes()
	r := NewReader(buf)
	got := r.Bytes32()
	buf[4] = 7 // mutate the underlying buffer
	if got[0] != 9 {
		t.Fatal("Bytes32 result aliases the input buffer")
	}
}

func TestAppMsgRoundTripQuick(t *testing.T) {
	f := func(sender int32, seq uint64, body []byte) bool {
		m := AppMsg{ID: types.MsgID{Sender: types.ProcessID(sender), Seq: seq}, Body: body}
		w := NewWriter(m.WireSize())
		m.Marshal(w)
		if w.Len() != m.WireSize() {
			return false
		}
		r := NewReader(w.Bytes())
		got := UnmarshalAppMsg(r)
		r.ExpectEOF()
		if r.Err() != nil {
			return false
		}
		return got.ID == m.ID && bytes.Equal(got.Body, m.Body)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// randomBatch builds a batch with the given generator.
func randomBatch(rng *rand.Rand, size int) Batch {
	b := make(Batch, size)
	for i := range b {
		body := make([]byte, rng.Intn(64))
		rng.Read(body)
		b[i] = AppMsg{
			ID:   types.MsgID{Sender: types.ProcessID(rng.Intn(8)), Seq: rng.Uint64() % 1000},
			Body: body,
		}
	}
	return b
}

func TestBatchRoundTripQuick(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := randomBatch(rng, int(size%32))
		w := NewWriter(b.WireSize())
		b.Marshal(w)
		if w.Len() != b.WireSize() {
			return false
		}
		r := NewReader(w.Bytes())
		got := UnmarshalBatch(r)
		r.ExpectEOF()
		if r.Err() != nil {
			return false
		}
		return reflect.DeepEqual(got, b) || (len(b) == 0 && len(got) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBatchSortDeterministicQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := randomBatch(rng, 20)
		b.SortDeterministic()
		for i := 1; i < len(b); i++ {
			if b[i].ID.Less(b[i-1].ID) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBatchDedup(t *testing.T) {
	id1 := types.MsgID{Sender: 0, Seq: 1}
	id2 := types.MsgID{Sender: 1, Seq: 1}
	b := Batch{
		{ID: id1, Body: []byte("first")},
		{ID: id2},
		{ID: id1, Body: []byte("dup")},
	}
	got := b.Dedup()
	if len(got) != 2 {
		t.Fatalf("Dedup kept %d, want 2", len(got))
	}
	if string(got[0].Body) != "first" {
		t.Errorf("Dedup did not keep the first occurrence: %q", got[0].Body)
	}
}

func TestBatchPayloadBytesAndIDs(t *testing.T) {
	b := Batch{
		{ID: types.MsgID{Sender: 0, Seq: 1}, Body: make([]byte, 10)},
		{ID: types.MsgID{Sender: 1, Seq: 2}, Body: make([]byte, 22)},
	}
	if got := b.PayloadBytes(); got != 32 {
		t.Errorf("PayloadBytes = %d, want 32", got)
	}
	ids := b.IDs()
	if len(ids) != 2 || ids[0] != b[0].ID || ids[1] != b[1].ID {
		t.Errorf("IDs = %v", ids)
	}
}

func TestBatchCorruptDecode(t *testing.T) {
	// A count prefix claiming many messages with a truncated body must
	// fail cleanly, not panic or over-allocate.
	w := NewWriter(8)
	w.Uint32(1000)
	r := NewReader(w.Bytes())
	if got := UnmarshalBatch(r); got != nil {
		t.Fatalf("corrupt batch decoded: %v", got)
	}
	if r.Err() == nil {
		t.Fatal("no error for corrupt batch")
	}
}
