package modab_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"modab"
)

// TestFacadeMembershipSim drives the full add/remove cycle through the
// facade on the simulated driver: admit a fourth process (it catches up
// on the history it missed), retire the first, and check the view and
// the joiner's delivery stream through the public surface.
func TestFacadeMembershipSim(t *testing.T) {
	for _, stk := range []modab.Stack{modab.Modular, modab.Monolithic} {
		stk := stk
		t.Run(stk.String(), func(t *testing.T) {
			var mu sync.Mutex
			counts := make(map[modab.ProcessID]int)
			cluster, err := modab.New(3, stk,
				modab.WithSimulation(11),
				modab.WithDurability("", modab.SyncNone),
				modab.WithOnDeliver(func(ev modab.Event) {
					mu.Lock()
					counts[ev.P]++
					mu.Unlock()
				}))
			if err != nil {
				t.Fatal(err)
			}
			defer cluster.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()

			for i := 0; i < 6; i++ {
				if _, err := cluster.Abcast(ctx, 0, []byte{byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			id, err := cluster.Add(ctx)
			if err != nil {
				t.Fatalf("Add: %v", err)
			}
			if id != 3 {
				t.Fatalf("joiner ID = %v", id)
			}
			if cluster.N() != 4 {
				t.Fatalf("N = %d after Add", cluster.N())
			}
			if _, err := cluster.Abcast(ctx, int(id), []byte("joiner speaks")); err != nil {
				t.Fatalf("abcast at joiner: %v", err)
			}
			if err := cluster.Remove(ctx, 0); err != nil {
				t.Fatalf("Remove: %v", err)
			}
			if _, err := cluster.Abcast(ctx, 0, []byte("x")); !errors.Is(err, modab.ErrCrashed) {
				t.Fatalf("abcast at removed process: %v", err)
			}
			for p := 1; p < 4; p++ {
				if _, err := cluster.Abcast(ctx, p, []byte{0x40, byte(p)}); err != nil {
					t.Fatalf("abcast at p%d: %v", p, err)
				}
			}
			cluster.Sim().RunIdle(time.Minute)
			for p := 1; p < 4; p++ {
				v := cluster.View(p)
				if v.Contains(0) || !v.Contains(3) || len(v.Members) != 3 {
					t.Fatalf("p%d view: %v", p, v)
				}
			}
			const total = 6 + 1 + 3
			mu.Lock()
			defer mu.Unlock()
			for p := modab.ProcessID(1); p < 4; p++ {
				if counts[p] != total {
					t.Fatalf("p%d delivered %d of %d", p, counts[p], total)
				}
			}
			if v := cluster.View(0); len(v.Members) != 0 {
				t.Fatalf("removed process still reports a view: %v", v)
			}
		})
	}
}

// TestFacadeMembershipGroup is the same cycle on the default real-time
// in-process driver.
func TestFacadeMembershipGroup(t *testing.T) {
	cluster, err := modab.New(3, modab.Monolithic,
		modab.WithDurability(t.TempDir(), modab.SyncNone),
		modab.WithFailureDetector(10*time.Millisecond, 80*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sub := cluster.Deliveries()
	for i := 0; i < 5; i++ {
		if _, err := cluster.Abcast(ctx, 1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	id, err := cluster.Add(ctx)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if _, err := cluster.Abcast(ctx, int(id), []byte("from joiner")); err != nil {
		t.Fatalf("abcast at joiner: %v", err)
	}
	if err := cluster.Remove(ctx, 0); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if v := cluster.View(1); v.Contains(0) || !v.Contains(id) {
		t.Fatalf("p1 view after cycle: %v", v)
	}
	// The stream sees every delivery of every live process: 5+1 messages
	// at four processes, minus whatever p0 missed after its removal —
	// just check the joiner's complete stream.
	joinerSeen := 0
	timeout := time.After(30 * time.Second)
	for joinerSeen < 6 {
		select {
		case ev := <-sub.C():
			if ev.P == id {
				joinerSeen++
			}
		case <-timeout:
			t.Fatalf("joiner streamed %d of 6", joinerSeen)
		}
	}
}

// TestAddWithoutDurabilityFailsFast: members without write-ahead logs
// cannot serve a joiner's state transfer, so Add must reject the call
// immediately instead of blocking on a catch-up that never finishes.
func TestAddWithoutDurabilityFailsFast(t *testing.T) {
	for _, opts := range [][]modab.Option{
		nil,                       // real-time group driver
		{modab.WithSimulation(7)}, // simulated driver
	} {
		cluster, err := modab.New(3, modab.Monolithic, opts...)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if _, err := cluster.Add(ctx); !errors.Is(err, modab.ErrBadConfig) {
			t.Errorf("Add without durability (opts %v): err = %v, want ErrBadConfig", opts, err)
		}
		cancel()
		cluster.Close()
	}
}
