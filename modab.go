// Package modab is a Go implementation of atomic broadcast in two
// architectures — modular (ABcast / Consensus / RBcast microprotocols
// composed as black boxes) and monolithic (the same algorithms merged
// into one module) — reproducing Rütti, Mena, Ekwall and Schiper,
// "On the Cost of Modularity in Atomic Broadcast", DSN 2007.
//
// # Quick start
//
//	group, err := modab.NewLocalGroup(3, modab.Modular, func(p modab.ProcessID, d modab.Delivery) {
//		fmt.Printf("%s delivered %s: %q\n", p, d.Msg.ID, d.Msg.Body)
//	})
//	if err != nil { ... }
//	defer group.Close()
//	group.Abcast(0, []byte("hello"))    // totally ordered at all processes
//
// Both stacks guarantee uniform total order under crash faults (up to a
// minority of processes) with an unreliable failure detector; the
// difference is performance, which this library measures the same way the
// paper does (see EXPERIMENTS.md and cmd/abbench).
//
// The packages under internal/ hold the implementation: the protocol
// engines (internal/modular, internal/monolithic, and the microprotocol
// layers they build on), the drivers (internal/runtime for real time over
// TCP or in-memory channels, internal/netsim for deterministic
// discrete-event simulation), and the measurement harness.
package modab

import (
	"modab/internal/core"
	"modab/internal/engine"
	"modab/internal/netsim"
	"modab/internal/runtime"
	"modab/internal/types"
)

// Re-exported identifiers: the public vocabulary of the library.
type (
	// ProcessID identifies a process of the static group (0-based).
	ProcessID = types.ProcessID
	// MsgID uniquely identifies an abcast message.
	MsgID = types.MsgID
	// Stack selects the modular or monolithic implementation.
	Stack = types.Stack
	// Delivery is one adelivered message with its ordering instance.
	Delivery = engine.Delivery
	// Config carries the protocol tunables shared by both stacks.
	Config = engine.Config
	// Node is one running process (see NewTCPNode and Group.Node).
	Node = runtime.Node
	// Group is an in-process group over an in-memory network.
	Group = core.Group
	// TCPNodeOptions configures one process of a TCP group.
	TCPNodeOptions = core.TCPNodeOptions
	// SimOptions configures a deterministic simulated cluster.
	SimOptions = netsim.Options
	// SimCluster is a deterministic simulated cluster.
	SimCluster = netsim.Cluster
	// CostModel parameterizes the simulated hardware.
	CostModel = netsim.CostModel
)

// Stack values.
const (
	// Modular composes ABcast, Consensus and RBcast as independent
	// microprotocols (paper §3).
	Modular = types.Modular
	// Monolithic merges them into a single optimized module (paper §4).
	Monolithic = types.Monolithic
)

// Errors.
var (
	// ErrFlowControl is returned by Node.Abcast when the window is full.
	ErrFlowControl = types.ErrFlowControl
	// ErrStopped is returned by operations on a closed node.
	ErrStopped = types.ErrStopped
)

// NewLocalGroup starts an n-process group of the given stack over an
// in-memory network. onDeliver (optional) observes every adelivery.
func NewLocalGroup(n int, stack Stack, onDeliver func(p ProcessID, d Delivery)) (*Group, error) {
	return core.NewLocalGroup(n, stack, onDeliver)
}

// NewTCPNode starts one process of a group communicating over TCP.
func NewTCPNode(opts TCPNodeOptions) (*Node, error) { return core.NewTCPNode(opts) }

// NewSimCluster builds a deterministic simulated cluster for running the
// paper's experiments programmatically.
func NewSimCluster(opts SimOptions) (*SimCluster, error) { return core.NewSimCluster(opts) }

// DefaultConfig returns the protocol tunables used in the paper's
// evaluation for a group of n processes.
func DefaultConfig(n int) Config { return engine.DefaultConfig(n) }

// DefaultCostModel returns the calibrated simulated-hardware model.
func DefaultCostModel() CostModel { return netsim.DefaultModel() }
