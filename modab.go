// Package modab is a Go implementation of atomic broadcast in two
// architectures — modular (ABcast / Consensus / RBcast microprotocols
// composed as black boxes) and monolithic (the same algorithms merged
// into one module) — reproducing Rütti, Mena, Ekwall and Schiper,
// "On the Cost of Modularity in Atomic Broadcast", DSN 2007.
//
// # Quick start
//
// New builds a cluster handle for either stack; by default it runs an
// n-process group over an in-memory network inside this OS process.
// Deliveries are consumed from a pull-based stream, and submission is
// context-aware and blocks on flow control:
//
//	cluster, err := modab.New(3, modab.Modular)
//	if err != nil { ... }
//	defer cluster.Close()
//
//	sub := cluster.Deliveries()            // pull-based, per-subscriber buffer
//	go func() {
//		for ev := range sub.C() {          // identical total order at all processes
//			fmt.Printf("%s delivered %s: %q\n", ev.P, ev.D.Msg.ID, ev.D.Msg.Body)
//		}
//	}()
//
//	ctx := context.Background()
//	cluster.Abcast(ctx, 0, []byte("hello"))   // blocks on flow control, honors ctx
//
// Functional options select the driver and tune it:
//
//	// One process of a group over real TCP (run one per -id):
//	modab.New(3, modab.Monolithic,
//		modab.WithTransportTCP(addrs, self),
//		modab.WithFailureDetector(25*time.Millisecond, 200*time.Millisecond))
//
//	// The paper's deterministic discrete-event simulation:
//	modab.New(3, modab.Modular, modab.WithSimulation(42))
//
//	// Protocol tunables and delivery-stream defaults:
//	modab.New(5, modab.Modular,
//		modab.WithConfig(cfg),
//		modab.WithDeliveryBuffer(1024),
//		modab.WithDeliveryOverflow(modab.OverflowDrop))
//
//	// Sender-side batching: amortize per-message layer overhead by
//	// coalescing up to 32 messages (or 64 KiB) per diffusion/proposal,
//	// flushing undersized batches after 2ms:
//	modab.New(10, modab.Modular, modab.WithBatching(32, 65536, 2*time.Millisecond))
//
//	// Consensus pipelining: keep a window of 8 instances in flight
//	// instead of waiting out each decision round-trip (depth 1 is the
//	// paper's sequential behavior):
//	modab.New(3, modab.Modular, modab.WithPipelining(8))
//
// Every driver exposes the same submission (Abcast, TryAbcast), the same
// delivery stream (Deliveries) and the same instrumentation (Counters,
// Stats). TryAbcast is the only entry point that returns ErrFlowControl;
// the blocking Abcast parks on a condition signal until the window
// drains, the context ends, or the node stops.
//
// Both stacks guarantee uniform total order under crash faults (up to a
// minority of processes) with an unreliable failure detector; the
// difference is performance, which this library measures the same way the
// paper does (see docs/BENCHMARKS.md and cmd/abbench).
//
// The packages under internal/ hold the implementation: the protocol
// engines (internal/modular, internal/monolithic, and the microprotocol
// layers they build on), the drivers (internal/runtime for real time over
// TCP or in-memory channels, internal/netsim for deterministic
// discrete-event simulation), and the measurement harness.
//
// See MIGRATION.md for the mapping from the pre-v1 callback/positional
// API (NewLocalGroup, NewTCPNode, NewSimCluster — kept as deprecated
// shims for one release and now removed) to this surface.
package modab

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"modab/internal/batch"
	"modab/internal/core"
	"modab/internal/dissem"
	"modab/internal/engine"
	"modab/internal/member"
	"modab/internal/netsim"
	"modab/internal/obs"
	"modab/internal/rsm"
	"modab/internal/runtime"
	"modab/internal/stream"
	"modab/internal/trace"
	"modab/internal/types"
	"modab/internal/wal"
)

// Re-exported identifiers: the public vocabulary of the library.
type (
	// ProcessID identifies a process of the static group (0-based).
	ProcessID = types.ProcessID
	// MsgID uniquely identifies an abcast message.
	MsgID = types.MsgID
	// Stack selects the modular or monolithic implementation.
	Stack = types.Stack
	// Delivery is one adelivered message with its ordering instance.
	Delivery = engine.Delivery
	// Event is one adelivery tagged with the delivering process and the
	// driver's clock — the element of cluster-wide delivery streams.
	Event = engine.Event
	// Config carries the protocol tunables shared by both stacks.
	Config = engine.Config
	// BatchConfig tunes sender-side batching (see WithBatching and
	// Config.Batch); the zero value disables it.
	BatchConfig = batch.Config
	// Node is one running process (see Cluster.Node).
	Node = runtime.Node
	// Group is an in-process group over an in-memory network.
	Group = core.Group
	// SimCluster is a deterministic simulated cluster.
	SimCluster = netsim.Cluster
	// CostModel parameterizes the simulated hardware.
	CostModel = netsim.CostModel
	// Snapshot is an immutable copy of one process's counters.
	Snapshot = trace.Snapshot
	// Stats is the uniform whole-cluster instrumentation snapshot.
	Stats = trace.Stats
	// OverflowPolicy selects what a delivery stream does when a
	// subscriber's buffer fills: OverflowBlock or OverflowDrop.
	OverflowPolicy = stream.Policy
	// DeliveryStream is a pull-based subscription to cluster-wide
	// adeliveries; consume it with "for ev := range sub.C()".
	DeliveryStream = stream.Sub[engine.Event]
	// StreamOption tunes one subscription (see StreamBuffer,
	// StreamOverflow).
	StreamOption = stream.SubOption
	// SyncPolicy selects when write-ahead-log appends reach stable storage
	// (see WithDurability): SyncAlways, SyncInterval or SyncNone.
	SyncPolicy = wal.SyncPolicy
	// StateMachine is the replicated state machine contract
	// (Apply/Snapshot/Restore) attached with WithStateMachine; every
	// process applies the same totally ordered commands, so deterministic
	// implementations stay byte-identical across the group.
	StateMachine = rsm.StateMachine
	// SMEntry is one totally ordered command as the state machine sees it.
	SMEntry = rsm.Entry
	// Applier feeds a state machine from the delivery stream and answers
	// read-your-writes waits (see Cluster.Applier).
	Applier = rsm.Applier
	// KV is the built-in replicated key/value state machine (NewKV).
	KV = rsm.KV
	// Dissemination selects how payload frames reach the group (see
	// WithDissemination): DissemAllToAll or DissemRing.
	Dissemination = dissem.Strategy
	// ObsRecorder is one process's observability state — latency
	// histograms (submit→adeliver, apply, fsync, recovery, snapshot
	// install) plus the sampled message lifecycle tracer. Attach with
	// WithObservability, read with Cluster.Obs, serve over HTTP with
	// obs.NewHTTPHandler (see cmd/abnode -metrics).
	ObsRecorder = obs.Recorder
	// ObsHistSnapshot is an immutable, mergeable copy of one latency
	// histogram (percentiles via P50/P95/P99).
	ObsHistSnapshot = obs.HistSnapshot
	// ObsStageEvent is one recorded lifecycle point of a sampled message.
	ObsStageEvent = obs.StageEvent
	// View is one membership configuration: its epoch, the consensus
	// instance it activates at, and the member set (see Cluster.Add,
	// Cluster.Remove, Cluster.View).
	View = member.View
)

// Stack values.
const (
	// Modular composes ABcast, Consensus and RBcast as independent
	// microprotocols (paper §3).
	Modular = types.Modular
	// Monolithic merges them into a single optimized module (paper §4).
	Monolithic = types.Monolithic
)

// Dissemination values.
const (
	// DissemAllToAll has every origin broadcast its payload frames to all
	// n-1 peers itself — the paper's behavior and the default.
	DissemAllToAll = dissem.AllToAll
	// DissemRing relays payload frames along a deterministic successor
	// ring: the origin transmits each frame once, turning its O(n) egress
	// into O(1) (the coordinator-NIC bottleneck fix).
	DissemRing = dissem.Ring
)

// ParseDissemination maps the command-line spelling of a dissemination
// strategy ("all-to-all" or "ring") to its value.
func ParseDissemination(name string) (Dissemination, error) {
	return dissem.ParseStrategy(name)
}

// Write-ahead-log fsync policies (see WithDurability).
const (
	// SyncAlways fsyncs after every append: zero loss window, slowest.
	SyncAlways = wal.SyncAlways
	// SyncInterval fsyncs on a short background ticker: bounded loss
	// window under power failure, none under a process crash.
	SyncInterval = wal.SyncInterval
	// SyncNone leaves flushing to the OS: durable against process crashes
	// only.
	SyncNone = wal.SyncNone
)

// Overflow policies for delivery streams.
const (
	// OverflowBlock backpressures the protocol engine until the
	// subscriber drains — no delivery is ever lost. The default.
	OverflowBlock = stream.Block
	// OverflowDrop discards deliveries for the lagging subscriber and
	// counts them in Counters().StreamDropped.
	OverflowDrop = stream.Drop
)

// Errors.
var (
	// ErrFlowControl is returned by TryAbcast when the window is full. It
	// is never returned by the blocking Abcast.
	ErrFlowControl = types.ErrFlowControl
	// ErrStopped is returned by operations on a closed cluster or node.
	ErrStopped = types.ErrStopped
	// ErrCrashed is returned when submitting at a crashed process.
	ErrCrashed = types.ErrCrashed
	// ErrNotLocal is returned by a TCP-driver cluster when the target
	// process is one of the remote peers.
	ErrNotLocal = types.ErrNotLocal
	// ErrStalled is returned by a simulated blocking Abcast when virtual
	// time cannot advance while the window is full.
	ErrStalled = types.ErrStalled
	// ErrBadConfig is returned by options and operations whose
	// requirements are not met (for example Add without WithDurability).
	ErrBadConfig = types.ErrBadConfig
)

// KV result status codes (see DecodeKVResult).
const (
	// KVStatusOK means the operation succeeded.
	KVStatusOK = rsm.StatusOK
	// KVStatusMissing means the key did not exist.
	KVStatusMissing = rsm.StatusMissing
	// KVStatusCASFailed means the compare-and-swap expectation did not hold.
	KVStatusCASFailed = rsm.StatusCASFailed
	// KVStatusBadCommand means the command bytes did not decode.
	KVStatusBadCommand = rsm.StatusBadCommand
)

// NewKV returns an empty built-in key/value state machine; use it as the
// WithStateMachine factory ("func() modab.StateMachine { return
// modab.NewKV() }") and submit commands built with the KVPut family.
func NewKV() *KV { return rsm.NewKV() }

// KVPut builds a put command for the built-in KV state machine.
func KVPut(key, value []byte) []byte { return rsm.EncodePut(key, value) }

// KVDelete builds a delete command.
func KVDelete(key []byte) []byte { return rsm.EncodeDelete(key) }

// KVCAS builds a compare-and-swap command (old empty = expect absent).
func KVCAS(key, old, new []byte) []byte { return rsm.EncodeCAS(key, old, new) }

// KVGet builds an ordered (linearizable) get command.
func KVGet(key []byte) []byte { return rsm.EncodeGet(key) }

// DecodeKVResult splits a KV apply result (Applier.Await, Applier.Result)
// into its status byte and value.
func DecodeKVResult(res []byte) (status byte, value []byte) { return rsm.DecodeResult(res) }

// StreamBuffer overrides the subscription's buffer capacity.
func StreamBuffer(n int) StreamOption { return stream.WithBuffer(n) }

// StreamOverflow overrides the subscription's overflow policy.
func StreamOverflow(p OverflowPolicy) StreamOption { return stream.WithPolicy(p) }

// Option configures New.
type Option func(*settings) error

// settings accumulates the option values before driver construction.
type settings struct {
	engineCfg    Config
	tcpAddrs     []string
	tcpSelf      ProcessID
	tcp          bool
	sim          bool
	seed         int64
	model        CostModel
	hbPeriod     time.Duration
	suspectAfter time.Duration
	buffer       int
	policy       OverflowPolicy
	onDeliver    func(Event)
	batch        *BatchConfig
	pipeline     int
	dissem       *Dissemination
	digest       bool
	dur          *core.DurabilityOptions
	sm           func() rsm.StateMachine
	snapEvery    uint64
	obsCfg       *obs.Config
	join         bool
	bootN        int
}

// WithConfig overrides the protocol tunables (flow-control window, batch
// cap, idle kick, ...). The zero value means DefaultConfig(n).
func WithConfig(cfg Config) Option {
	return func(s *settings) error {
		s.engineCfg = cfg
		return nil
	}
}

// WithBatching enables sender-side batching on either stack: up to
// maxMsgs application messages (or maxBytes of encoded batch, whichever
// trips first; maxBytes 0 means no byte cap) are coalesced into one
// diffusion frame and one consensus proposal, and an undersized batch is
// flushed maxDelay after its first message. Batching amortizes the
// per-message header bytes and handler dispatches that each composed
// layer costs (the price of modularity the paper measures) and widens the
// flow-control window to span two full batches while still accounting
// in-flight messages individually (Config.EffectiveWindow). Per-batch
// statistics appear in Counters (SenderBatches, SenderBatchedMsgs,
// Snapshot.MsgsPerSenderBatch, Snapshot.HeaderBytesPerMsg) and in the
// cmd/abbench table. It composes with WithConfig regardless of option
// order.
func WithBatching(maxMsgs, maxBytes int, maxDelay time.Duration) Option {
	return func(s *settings) error {
		b := BatchConfig{MaxMsgs: maxMsgs, MaxBytes: maxBytes, MaxDelay: maxDelay}
		if !b.Enabled() {
			return fmt.Errorf("%w: WithBatching requires maxMsgs >= 1", types.ErrBadConfig)
		}
		if err := b.Validate(); err != nil {
			return err
		}
		s.batch = &b
		return nil
	}
}

// WithPipelining sets the consensus pipeline window W on either stack:
// each process keeps up to depth consensus instances in flight
// concurrently — proposing into instance k+1 (… k+W-1) while instance k's
// decision is still round-tripping — instead of the paper's strictly
// sequential one-instance-at-a-time execution. Depth 1 (and the default)
// is bit-for-bit the sequential protocol. Pipelining overlaps the
// per-instance decision latency the same way sender-side batching
// (WithBatching) amortizes the per-message cost: the two compose, and
// both stacks honor the window identically, so the modularity comparison
// stays apples-to-apples at every depth. The flow-control window is
// widened by the same factor so W instances can stay busy
// (Config.EffectiveWindow); delivery order, duplicate suppression and all
// safety properties are unchanged. Observability: Counters report
// PipelineDepthObserved and ConcurrentInstances, and cmd/abbench grows
// -pipeline and -fig pipeline. It composes with WithConfig regardless of
// option order.
func WithPipelining(depth int) Option {
	return func(s *settings) error {
		if depth < 1 {
			return fmt.Errorf("%w: WithPipelining requires depth >= 1", types.ErrBadConfig)
		}
		s.pipeline = depth
		return nil
	}
}

// WithDissemination selects how payload frames reach the group on either
// stack. DissemAllToAll (the default) is the paper's behavior: every
// origin broadcasts its diffusion frames to all n-1 peers itself, so the
// round coordinator's NIC carries O(n) copies of every proposal.
// DissemRing relays payloads along a deterministic successor ring derived
// from the membership list instead: the origin transmits each frame
// exactly once, every process forwards it to its first live successor,
// and a dedup watermark kills laps — the origin's egress becomes O(1) in
// n while consensus control traffic (proposals' votes, estimates, acks,
// decisions, recovery) stays all-to-all and the ordering black box is
// untouched. The ring repairs itself around suspected processes
// (failure-detector-driven skip plus re-spread of still-undecided
// payloads), so fault tolerance is unchanged. Observability: per-process
// egress bytes appear in Counters.PayloadBytesSent and the cmd/abbench
// -fig ring table. It composes with WithConfig regardless of option
// order.
func WithDissemination(strategy Dissemination) Option {
	return func(s *settings) error {
		if err := strategy.Validate(); err != nil {
			return fmt.Errorf("%w: WithDissemination(%d)", err, strategy)
		}
		s.dissem = &strategy
		return nil
	}
}

// WithDigestOrdering splits payload dissemination from ordering on either
// stack (cf. Ring Paxos / Chop Chop): the sender disseminates a batch's
// payload bytes exactly once through the dissemination seam
// (WithDissemination — announce frames travel all-to-all or around the
// ring), and consensus then orders only a compact descriptor — origin,
// incarnation-tagged batch sequence number, CRC-32C digest, message count
// — so a 1000-message batch orders as one ~32-wire-byte unit and
// proposal/estimate/ack/decision frames stop scaling with payload size.
// Adelivery of a decided descriptor blocks until its payload is resident;
// a payload lost in flight is refetched from a rotating live holder on
// the resend timer (Config.ResendEvery), and write-ahead logs store
// resolved payload batches, so recovery, state transfer and replay are
// unchanged. Flow control keeps accounting per message. Both stacks honor
// the split identically; the default (off) is bit-for-bit the payload
// ordering the golden traces pin. Observability: Counters report
// OrderedBytes, DisseminatedBytes, PayloadFetches and PayloadFetchNanos,
// the payload_fetch histogram records blocked adeliveries, and
// cmd/abbench grows -digest and -fig digest. It composes with WithConfig
// regardless of option order.
func WithDigestOrdering() Option {
	return func(s *settings) error {
		s.digest = true
		return nil
	}
}

// WithDurability enables the crash-recovery subsystem: every process the
// cluster drives appends its admissions and consensus decisions to a
// write-ahead log under dir before acting on them, and Cluster.Restart
// brings a crashed process back — it replays its log, announces itself,
// and fetches the decisions it missed from a live peer (state transfer)
// before resuming, with no duplicate, missed, or reordered deliveries.
//
// policy bounds the durability window: SyncAlways survives power loss,
// SyncInterval bounds the loss window to milliseconds, SyncNone survives
// process crashes only. An in-process group logs to dir/p0..p<n-1>; a TCP
// node (WithTransportTCP) logs directly to dir — give each process of the
// group its own directory. The simulated driver (WithSimulation) ignores
// dir and uses a deterministic in-memory durable store instead, so
// recovery scenarios replay identically under virtual time.
func WithDurability(dir string, policy SyncPolicy) Option {
	return func(s *settings) error {
		s.dur = &core.DurabilityOptions{Dir: dir, Log: wal.Options{Policy: policy}}
		return nil
	}
}

// WithStateMachine attaches a replicated state machine to every process
// the cluster drives: the factory runs once per process incarnation, and
// each replica applies the totally ordered command stream exactly once,
// synchronously in the delivery path (Cluster.Applier exposes results,
// read-your-writes waits and state digests). snapshotEvery > 0 makes each
// process snapshot its state machine every that many consensus instances;
// snapshots then serve two jobs: a restarted or far-behind process
// installs a peer's snapshot instead of replaying all history, and (with
// WithDurability) write-ahead-log segments below the snapshot horizon are
// truncated, bounding both recovery time and disk growth. snapshotEvery 0
// disables snapshotting (the state machine still applies).
func WithStateMachine(factory func() StateMachine, snapshotEvery uint64) Option {
	return func(s *settings) error {
		if factory == nil {
			return fmt.Errorf("%w: WithStateMachine requires a factory", types.ErrBadConfig)
		}
		s.sm = factory
		s.snapEvery = snapshotEvery
		return nil
	}
}

// WithObservability attaches the end-to-end observability layer to every
// process the cluster drives: lock-free latency histograms on the hot
// paths (abcast→adeliver, state machine apply, write-ahead-log fsync,
// recovery, snapshot install) and a lifecycle tracer that follows one in
// every sampleEvery application messages through its pipeline stages
// (accept → seal → propose → decide → adeliver → apply). sampleEvery 0
// selects the default (one in 32). Read the per-process recorders with
// Cluster.Obs; recorders survive Crash/Restart, accumulating across
// incarnations. Recording costs a few atomic adds per message on the hot
// path and never perturbs the protocol. The simulated driver records
// unconditionally (in deterministic virtual time); there this option only
// tunes the sampling period.
func WithObservability(sampleEvery uint64) Option {
	return func(s *settings) error {
		s.obsCfg = &obs.Config{SampleEvery: sampleEvery}
		return nil
	}
}

// WithTransportTCP makes the cluster drive one real process — self — of
// a group whose members listen on addrs (indexed by ProcessID). Start
// one cluster per process to form the group; n must equal len(addrs).
func WithTransportTCP(addrs []string, self ProcessID) Option {
	return func(s *settings) error {
		if len(addrs) == 0 {
			return fmt.Errorf("%w: WithTransportTCP requires at least one address", types.ErrBadConfig)
		}
		if self < 0 || int(self) >= len(addrs) {
			return fmt.Errorf("%w: self %d does not index addrs (len %d)", types.ErrBadConfig, self, len(addrs))
		}
		s.tcp = true
		s.tcpAddrs = addrs
		s.tcpSelf = self
		return nil
	}
}

// WithJoin marks the local TCP process as a joiner: it is not part of
// the boot group, starts with an empty restart-style state, and must be
// admitted through RequestJoin before it participates. The address
// table passed to WithTransportTCP must include the joiner's own listen
// address in its slot; the boot group is the table prefix. bootN is the
// original boot-group size — pass 0 to infer it as self (correct for
// the first joiner, whose slot extends the boot table by one); later
// joiners, whose tables already include earlier joiners, must pass it
// explicitly. TCP driver only.
func WithJoin(bootN int) Option {
	return func(s *settings) error {
		if bootN < 0 {
			return fmt.Errorf("%w: negative boot-group size", types.ErrBadConfig)
		}
		s.join = true
		s.bootN = bootN
		return nil
	}
}

// WithSimulation runs the cluster on the deterministic discrete-event
// simulator with the given seed (same seed, same trace). Submission then
// advances virtual time: Abcast executes at the current virtual instant,
// and when blocked on flow control it steps the simulation until the
// window drains. Use Sim() for scheduled workloads and fault injection.
func WithSimulation(seed int64) Option {
	return func(s *settings) error {
		s.sim = true
		s.seed = seed
		return nil
	}
}

// WithCostModel overrides the simulated hardware model; it implies
// WithSimulation (with seed 0 unless WithSimulation is also given).
func WithCostModel(m CostModel) Option {
	return func(s *settings) error {
		s.sim = true
		s.model = m
		return nil
	}
}

// WithFailureDetector parameterizes the heartbeat failure detector of
// the real-time drivers: heartbeats every period, suspicion after
// timeout without traffic. The simulator ignores it (detection latency
// lives in the cost model's FDDetect).
func WithFailureDetector(period, timeout time.Duration) Option {
	return func(s *settings) error {
		if period < 0 || timeout < 0 {
			return fmt.Errorf("%w: negative failure-detector interval", types.ErrBadConfig)
		}
		s.hbPeriod = period
		s.suspectAfter = timeout
		return nil
	}
}

// WithDeliveryBuffer sets the default per-subscriber buffer capacity of
// Deliveries (overridable per subscription via StreamBuffer).
func WithDeliveryBuffer(k int) Option {
	return func(s *settings) error {
		if k < 1 {
			return fmt.Errorf("%w: delivery buffer must be >= 1", types.ErrBadConfig)
		}
		s.buffer = k
		return nil
	}
}

// WithDeliveryOverflow sets the default overflow policy of Deliveries
// (overridable per subscription via StreamOverflow).
func WithDeliveryOverflow(p OverflowPolicy) Option {
	return func(s *settings) error {
		s.policy = p
		return nil
	}
}

// WithOnDeliver installs a delivery callback — a convenience adapter
// over the delivery stream for applications that do not need pull-based
// consumption. Events arrive in delivery order per process.
func WithOnDeliver(fn func(Event)) Option {
	return func(s *settings) error {
		s.onDeliver = fn
		return nil
	}
}

// Cluster is the unified facade over the three drivers: an in-process
// group over in-memory channels (the default), one process of a TCP
// group (WithTransportTCP), or a simulated cluster (WithSimulation).
// All drivers share the same submission, delivery-stream and
// instrumentation surface.
type Cluster struct {
	n     int
	stack Stack

	group *core.Group // in-memory driver

	node *runtime.Node // TCP driver (one local process)
	self ProcessID
	hub  *stream.Hub[engine.Event] // TCP driver's event stream
	// tcpOpts, smFactory and onDeliver are retained so Restart can rebuild
	// the local TCP node (each incarnation gets a fresh state machine);
	// durable records whether WithDurability was given.
	tcpOpts   core.TCPNodeOptions
	smFactory func() rsm.StateMachine
	onDeliver func(Event)
	durable   bool
	// streamDropped counts drops at the TCP driver's cluster-level
	// subscriptions; Counters/Stats fold it into the local process.
	streamDropped atomic.Int64
	wg            sync.WaitGroup
	start         time.Time

	sim *netsim.Cluster // simulated driver

	mu     sync.Mutex
	closed bool
}

// New builds a cluster of n processes running the given stack. With no
// options it starts the whole group in this OS process over an in-memory
// network; see WithTransportTCP and WithSimulation for the other
// drivers.
func New(n int, stack Stack, opts ...Option) (*Cluster, error) {
	var s settings
	for _, o := range opts {
		if err := o(&s); err != nil {
			return nil, err
		}
	}
	if s.tcp && s.sim {
		return nil, fmt.Errorf("%w: WithTransportTCP and WithSimulation are mutually exclusive", types.ErrBadConfig)
	}
	if s.tcp && len(s.tcpAddrs) != n {
		return nil, fmt.Errorf("%w: n=%d but WithTransportTCP has %d addresses", types.ErrBadConfig, n, len(s.tcpAddrs))
	}
	if s.join && !s.tcp {
		return nil, fmt.Errorf("%w: WithJoin requires WithTransportTCP", types.ErrBadConfig)
	}
	if s.dur != nil && !s.sim && s.dur.Dir == "" {
		return nil, fmt.Errorf("%w: WithDurability requires a directory on the real-time drivers", types.ErrBadConfig)
	}
	if s.batch != nil || s.pipeline > 0 || s.dissem != nil || s.digest {
		// Materialize the defaults first so the batching/pipelining/
		// dissemination/digest fields survive the drivers' zero-config
		// check, then overlay them on whatever WithConfig supplied.
		if s.engineCfg.N == 0 {
			s.engineCfg = engine.DefaultConfig(n)
		}
		if s.batch != nil {
			s.engineCfg.Batch = *s.batch
		}
		if s.pipeline > 0 {
			s.engineCfg.PipelineDepth = s.pipeline
		}
		if s.dissem != nil {
			s.engineCfg.Dissemination = *s.dissem
		}
		if s.digest {
			s.engineCfg.DigestOrdering = true
		}
	}
	c := &Cluster{n: n, stack: stack, start: time.Now(), durable: s.dur != nil, onDeliver: s.onDeliver}

	switch {
	case s.sim:
		var onDeliver func(p ProcessID, d Delivery, at time.Duration)
		if fn := s.onDeliver; fn != nil {
			onDeliver = func(p ProcessID, d Delivery, at time.Duration) {
				fn(Event{P: p, D: d, At: at})
			}
		}
		sim, err := netsim.NewCluster(netsim.Options{
			N:                n,
			Stack:            stack,
			Engine:           s.engineCfg,
			Model:            s.model,
			Seed:             s.seed,
			OnDeliver:        onDeliver,
			DeliveryBuffer:   s.buffer,
			DeliveryOverflow: s.policy,
			Durable:          s.dur != nil,
			StateMachine:     s.sm,
			SnapshotEvery:    s.snapEvery,
			Obs:              simObsConfig(s.obsCfg),
		})
		if err != nil {
			return nil, err
		}
		c.sim = sim

	case s.tcp:
		c.self = s.tcpSelf
		c.smFactory = s.sm
		c.hub = stream.NewHub[engine.Event](s.buffer, s.policy,
			func() { c.streamDropped.Add(1) })
		c.tcpOpts = core.TCPNodeOptions{
			Self:             s.tcpSelf,
			Addrs:            s.tcpAddrs,
			Stack:            stack,
			Engine:           s.engineCfg,
			HeartbeatPeriod:  s.hbPeriod,
			SuspectTimeout:   s.suspectAfter,
			DeliveryBuffer:   s.buffer,
			DeliveryOverflow: s.policy,
			Durability:       s.dur,
			SnapshotEvery:    s.snapEvery,
			Join:             s.join,
			BootN:            s.bootN,
		}
		if s.obsCfg != nil {
			// The recorder lives on tcpOpts, not the node, so a restarted
			// incarnation keeps accumulating into it.
			c.tcpOpts.Obs = obs.NewRecorder(*s.obsCfg)
		}
		if c.smFactory != nil {
			c.tcpOpts.StateMachine = c.smFactory()
		}
		node, err := core.NewTCPNode(c.tcpOpts)
		if err != nil {
			return nil, err
		}
		c.node = node
		c.bridge(node)

	default:
		var onDeliver core.DeliverFunc
		if fn := s.onDeliver; fn != nil {
			onDeliver = func(p ProcessID, d Delivery) {
				fn(Event{P: p, D: d, At: time.Since(c.start)})
			}
		}
		group, err := core.NewGroup(n, stack, core.GroupOptions{
			Engine:           s.engineCfg,
			HeartbeatPeriod:  s.hbPeriod,
			SuspectTimeout:   s.suspectAfter,
			DeliveryBuffer:   s.buffer,
			DeliveryOverflow: s.policy,
			OnDeliver:        onDeliver,
			Durability:       s.dur,
			StateMachine:     s.sm,
			SnapshotEvery:    s.snapEvery,
			Observability:    s.obsCfg,
		})
		if err != nil {
			return nil, err
		}
		c.group = group
	}
	return c, nil
}

// bridge pumps one TCP node's per-process delivery stream into the
// cluster-wide event stream (and the optional callback). It does not
// close the hub when the node stops — the node may be restarted and
// bridged again; Close closes the hub after the last bridge drains.
func (c *Cluster) bridge(node *runtime.Node) {
	sub := node.Deliveries()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for d := range sub.C() {
			ev := Event{P: c.self, D: d, At: time.Since(c.start)}
			if fn := c.onDeliver; fn != nil {
				fn(ev)
			}
			c.hub.Publish(ev)
		}
	}()
}

// N returns the group size.
func (c *Cluster) N() int { return c.size() }

// tcpNode returns the TCP driver's current local node (Restart swaps it).
func (c *Cluster) tcpNode() *runtime.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.node
}

// Stack returns the implementation under the facade.
func (c *Cluster) Stack() Stack { return c.stack }

// Abcast submits one payload for total-order broadcast at process p. It
// blocks while p's flow-control window is full — woken by a condition
// signal, not a poll — and returns ctx.Err() on cancellation or
// deadline, ErrStopped after Close, ErrCrashed at a crashed process, and
// ErrNotLocal when p is a remote peer of a TCP-driver cluster. On the
// simulated driver, blocking advances virtual time step by step until
// the window drains (ErrStalled if it never can).
func (c *Cluster) Abcast(ctx context.Context, p int, body []byte) (MsgID, error) {
	switch {
	case c.sim != nil:
		return c.simAbcast(ctx, p, body, false)
	case c.hub != nil:
		if p != int(c.self) {
			return MsgID{}, fmt.Errorf("%w: p%d (local node is %s)", ErrNotLocal, p+1, c.self)
		}
		return c.tcpNode().Abcast(ctx, body)
	default:
		return c.group.Abcast(ctx, p, body)
	}
}

// TryAbcast submits without waiting: ErrFlowControl when the window is
// full — the only entry point that returns it.
func (c *Cluster) TryAbcast(p int, body []byte) (MsgID, error) {
	switch {
	case c.sim != nil:
		return c.simAbcast(context.Background(), p, body, true)
	case c.hub != nil:
		if p != int(c.self) {
			return MsgID{}, fmt.Errorf("%w: p%d (local node is %s)", ErrNotLocal, p+1, c.self)
		}
		return c.tcpNode().TryAbcast(body)
	default:
		return c.group.TryAbcast(p, body)
	}
}

// simAbcast submits at the current virtual instant. When blocking, it
// steps the simulation forward until the window frees, the context ends,
// or the event queue runs dry (ErrStalled).
func (c *Cluster) simAbcast(ctx context.Context, p int, body []byte, try bool) (MsgID, error) {
	if n := c.size(); p < 0 || p >= n {
		return MsgID{}, fmt.Errorf("%w: p%d of %d", types.ErrBadConfig, p+1, n)
	}
	for {
		var (
			id   MsgID
			rerr error
		)
		c.sim.Abcast(ProcessID(p), c.sim.Now(), body, func(i MsgID, _ time.Duration, e error) {
			id, rerr = i, e
		})
		c.sim.Run(c.sim.Now()) // execute everything due at this instant
		if try || !errors.Is(rerr, ErrFlowControl) {
			return id, rerr
		}
		if err := ctx.Err(); err != nil {
			return MsgID{}, err
		}
		// Step virtual time until something is adelivered at p — only a
		// delivery of p's own message can free the window, so retrying
		// any earlier just charges the process CPU for rejected
		// submissions that distort the simulated measurements.
		before := c.sim.Counters(ProcessID(p)).ADeliver
		for c.sim.Counters(ProcessID(p)).ADeliver == before {
			if err := ctx.Err(); err != nil {
				return MsgID{}, err
			}
			if !c.sim.Step() {
				return MsgID{}, fmt.Errorf("%w: at virtual time %v", ErrStalled, c.sim.Now())
			}
		}
	}
}

// Deliveries subscribes to the cluster-wide adelivery stream: every
// adelivery at every process this cluster drives, tagged with process
// and time. Per-process order is preserved. The channel closes after
// Close (subscribers drain their buffers first); a subscription taken
// after Close sees an already-closed channel.
func (c *Cluster) Deliveries(opts ...StreamOption) *DeliveryStream {
	switch {
	case c.sim != nil:
		return c.sim.Deliveries(opts...)
	case c.hub != nil:
		return c.hub.Subscribe(opts...)
	default:
		return c.group.Deliveries(opts...)
	}
}

// Counters returns a snapshot of process p's instrumentation. On the TCP
// driver only the local process has counters; remote peers read as zero.
func (c *Cluster) Counters(p int) Snapshot {
	switch {
	case c.sim != nil:
		return c.sim.Counters(ProcessID(p))
	case c.hub != nil:
		if p != int(c.self) {
			return Snapshot{}
		}
		snap := c.tcpNode().Counters()
		snap.StreamDropped += c.streamDropped.Load()
		return snap
	default:
		return c.group.Counters(p)
	}
}

// Stats returns the uniform whole-cluster snapshot: per-process counters
// plus totals (including delivery-stream drops).
func (c *Cluster) Stats() Stats {
	switch {
	case c.sim != nil:
		return c.sim.Stats()
	case c.hub != nil:
		n := c.size()
		st := Stats{N: n, PerProcess: make([]Snapshot, n)}
		st.PerProcess[c.self] = c.Counters(int(c.self))
		st.Total = st.PerProcess[c.self]
		return st
	default:
		return c.group.Stats()
	}
}

// Crash stops process p: crash-stop fault injection on the in-memory and
// simulated drivers (survivors' failure detectors take over). On the TCP
// driver it closes the local node when p is local and returns ErrNotLocal
// otherwise.
func (c *Cluster) Crash(p int) error {
	switch {
	case c.sim != nil:
		c.sim.Crash(ProcessID(p), c.sim.Now())
		c.sim.Run(c.sim.Now())
		return nil
	case c.hub != nil:
		if p != int(c.self) {
			return fmt.Errorf("%w: p%d (local node is %s)", ErrNotLocal, p+1, c.self)
		}
		return c.tcpNode().Close()
	default:
		return c.group.Crash(p)
	}
}

// Restart brings a crashed process back — the crash-recovery model. It
// requires WithDurability: the new incarnation replays the process's
// write-ahead log (or the simulated durable store), announces itself, and
// fetches the decisions it missed from a live peer before resuming
// normal operation; survivors unsuspect it as soon as they hear from it.
// On the TCP driver only the local process can be restarted
// (ErrNotLocal otherwise); on the simulated driver the restart happens at
// the current virtual instant.
//
// Counters after a restart: the simulated driver accumulates across
// incarnations, while on the real-time drivers the restarted process's
// Counters restart from zero — its pre-crash deliveries are summarized
// by RecoveryReplayedMsgs (ADeliver + RecoveryReplayedMsgs is its
// lifetime delivery count).
func (c *Cluster) Restart(p int) error {
	if !c.durable {
		return fmt.Errorf("%w: Restart requires WithDurability", types.ErrBadConfig)
	}
	if n := c.size(); p < 0 || p >= n {
		return fmt.Errorf("%w: p%d of %d", types.ErrBadConfig, p+1, n)
	}
	switch {
	case c.sim != nil:
		c.sim.Restart(ProcessID(p), c.sim.Now())
		c.sim.Run(c.sim.Now())
		return nil
	case c.hub != nil:
		if p != int(c.self) {
			return fmt.Errorf("%w: p%d (local node is %s)", ErrNotLocal, p+1, c.self)
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.closed {
			return ErrStopped
		}
		if c.smFactory != nil {
			// A fresh incarnation gets a fresh state machine: its state is
			// rebuilt from the local snapshot plus the log suffix, never
			// inherited from the dead incarnation's memory.
			c.tcpOpts.StateMachine = c.smFactory()
		}
		node, err := core.NewTCPNode(c.tcpOpts)
		if err != nil {
			return err
		}
		c.node = node
		c.bridge(node)
		return nil
	default:
		return c.group.Restart(p)
	}
}

// Add admits a new process to the group: an AddProcess op rides the
// total order like any message, decides in a consensus instance, and
// activates at a decided boundary — every member switches quorum size,
// failure-detector monitor set, ring successor order and retention
// accounting at exactly the same instance. Add returns the new
// process's ID (dense: the next unused one).
//
// On the in-process group and simulated drivers the joiner is spawned
// by the cluster itself (it catches up through snapshot install plus
// log-suffix state transfer — joins require WithDurability) and addr
// must be omitted. On the TCP driver the local node sponsors the
// admission of a process at addr — the one address argument — and every
// member learns the address from the decided op itself; the operator
// starts that process with abnode's -join flag (it may also self-request
// admission, in which case Add is not needed).
func (c *Cluster) Add(ctx context.Context, addr ...string) (ProcessID, error) {
	if !c.durable {
		// Members without write-ahead logs cannot serve the decided
		// prefix, so a joiner would wait on state transfer forever.
		return 0, fmt.Errorf("%w: Add requires WithDurability", types.ErrBadConfig)
	}
	switch {
	case c.sim != nil:
		if len(addr) > 0 {
			return 0, fmt.Errorf("%w: addr is only for the TCP driver", types.ErrBadConfig)
		}
		return c.simAdd(ctx)
	case c.hub != nil:
		if len(addr) != 1 || addr[0] == "" {
			return 0, fmt.Errorf("%w: the TCP driver needs the joiner's listen address", types.ErrBadConfig)
		}
		return c.tcpAdd(ctx, addr[0])
	default:
		if len(addr) > 0 {
			return 0, fmt.Errorf("%w: addr is only for the TCP driver", types.ErrBadConfig)
		}
		id, err := c.group.Add(ctx)
		if err != nil {
			return 0, err
		}
		c.grow(int(id) + 1)
		return id, nil
	}
}

// RequestJoin asks sponsor — a current member — to submit this
// process's admission, and blocks until the decided view admits us.
// The request frame is fire-and-forget (it may race the decide or be
// dropped by a connecting transport), so it is re-sent periodically
// until the view changes. TCP driver with WithJoin only.
func (c *Cluster) RequestJoin(ctx context.Context, sponsor ProcessID) error {
	node := c.tcpNode()
	if node == nil {
		return ErrStopped
	}
	if c.hub == nil || !c.tcpOpts.Join {
		return fmt.Errorf("%w: RequestJoin needs the TCP driver with WithJoin", types.ErrBadConfig)
	}
	addr := c.tcpOpts.Addrs[c.self]
	for !node.CurrentView().Contains(c.self) {
		if err := ctx.Err(); err != nil {
			return err
		}
		_ = node.RequestJoin(sponsor, addr)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
	return nil
}

// Remove retires process p from the group: a RemoveProcess op rides the
// total order, and once the view excluding p has activated everywhere
// the process is decommissioned (in-process and simulated drivers crash
// it; on the TCP driver the operator stops it). Removing an
// already-crashed process is the permanent-node-loss recovery: the
// group stops waiting for it and quorums shrink at the boundary.
func (c *Cluster) Remove(ctx context.Context, p int) error {
	switch {
	case c.sim != nil:
		return c.simRemove(ctx, p)
	case c.hub != nil:
		node := c.tcpNode()
		if node == nil {
			return ErrStopped
		}
		target := ProcessID(p)
		if err := submitConfigRetry(ctx, node, member.Op{Kind: member.OpRemove, Target: target}); err != nil {
			return err
		}
		return waitView(ctx, node, func(v View) bool { return !v.Contains(target) })
	default:
		return c.group.Remove(ctx, p)
	}
}

// View returns process p's newest locally applied membership view (the
// zero view for crashed processes, remote TCP peers, and out-of-range
// indexes).
func (c *Cluster) View(p int) View {
	switch {
	case c.sim != nil:
		if !c.sim.Live(ProcessID(p)) {
			return View{}
		}
		return c.sim.View(ProcessID(p))
	case c.hub != nil:
		if p != int(c.self) {
			return View{}
		}
		node := c.tcpNode()
		if node == nil {
			return View{}
		}
		return node.CurrentView()
	default:
		return c.group.View(p)
	}
}

// grow raises the facade's process-slot count after an admission.
func (c *Cluster) grow(n int) {
	c.mu.Lock()
	if n > c.n {
		c.n = n
	}
	c.mu.Unlock()
}

// size is the current process-slot count (boot group plus joiners).
func (c *Cluster) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// simSponsor finds a live simulated process to submit a config op
// through, skipping avoid.
func (c *Cluster) simSponsor(avoid int) (ProcessID, bool) {
	for p := 0; p < c.sim.Procs(); p++ {
		if p != avoid && c.sim.Live(ProcessID(p)) {
			return ProcessID(p), true
		}
	}
	return 0, false
}

// simAdd runs an admission on the simulated driver: submit at the
// current virtual instant, then step virtual time until the joiner is
// spawned AND every live member has applied the admitting view. The
// second condition matters: a config op submitted through a process
// that is still on the old epoch gets stamped with a stale BaseEpoch
// and is deterministically rejected at decide time, so returning at
// first-spawn would make an immediately following Add/Remove no-op.
func (c *Cluster) simAdd(ctx context.Context) (ProcessID, error) {
	sponsor, ok := c.simSponsor(-1)
	if !ok {
		return 0, ErrCrashed
	}
	id := ProcessID(c.sim.Procs())
	c.sim.Join(sponsor, id, c.sim.Now())
	c.sim.Run(c.sim.Now())
	admitted := func() bool {
		if c.sim.Procs() <= int(id) {
			return false
		}
		for q := 0; q < c.sim.Procs(); q++ {
			if !c.sim.Live(ProcessID(q)) {
				continue
			}
			if !c.sim.View(ProcessID(q)).Contains(id) {
				return false
			}
		}
		return true
	}
	for !admitted() {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if !c.sim.Step() {
			return 0, fmt.Errorf("%w: at virtual time %v", ErrStalled, c.sim.Now())
		}
	}
	c.grow(int(id) + 1)
	return id, nil
}

// simRemove runs a removal on the simulated driver: submit, step until
// every live survivor has applied the view excluding the target, then
// crash the target (decommission).
func (c *Cluster) simRemove(ctx context.Context, p int) error {
	target := ProcessID(p)
	sponsor, ok := c.simSponsor(p)
	if !ok {
		return ErrCrashed
	}
	c.sim.Remove(sponsor, target, c.sim.Now())
	c.sim.Run(c.sim.Now())
	applied := func() bool {
		for q := 0; q < c.sim.Procs(); q++ {
			if q == p || !c.sim.Live(ProcessID(q)) {
				continue
			}
			if c.sim.View(ProcessID(q)).Contains(target) {
				return false
			}
		}
		return true
	}
	for !applied() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !c.sim.Step() {
			return fmt.Errorf("%w: at virtual time %v", ErrStalled, c.sim.Now())
		}
	}
	if c.sim.Live(target) {
		c.sim.Crash(target, c.sim.Now())
		c.sim.Run(c.sim.Now())
	}
	return nil
}

// tcpAdd sponsors the admission of a remote joiner at addr through the
// local node and waits for the view to admit it.
func (c *Cluster) tcpAdd(ctx context.Context, addr string) (ProcessID, error) {
	node := c.tcpNode()
	if node == nil {
		return 0, ErrStopped
	}
	target := node.CurrentView().MaxID() + 1
	op := member.Op{Kind: member.OpAdd, Target: target, Addr: addr}
	if err := submitConfigRetry(ctx, node, op); err != nil {
		return 0, err
	}
	if err := waitView(ctx, node, func(v View) bool { return v.Contains(target) }); err != nil {
		return 0, err
	}
	c.grow(int(target) + 1)
	return target, nil
}

// submitConfigRetry submits one config op, retrying flow-control
// rejections (the op is an ordinary abcast competing for window slots).
func submitConfigRetry(ctx context.Context, node *runtime.Node, op member.Op) error {
	for {
		_, err := node.SubmitConfig(op)
		if !errors.Is(err, ErrFlowControl) {
			return err
		}
		select {
		case <-time.After(2 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// waitView polls the local node until its applied view satisfies ok.
func waitView(ctx context.Context, node *runtime.Node, ok func(View) bool) error {
	for !ok(node.CurrentView()) {
		select {
		case <-time.After(2 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Node returns the runtime node driving process p, or nil when p is not
// driven by this cluster in real time (simulated driver, remote TCP
// peers, crashed processes). It is the escape hatch to the lower-level
// API.
func (c *Cluster) Node(p int) *Node {
	switch {
	case c.sim != nil:
		return nil
	case c.hub != nil:
		if p != int(c.self) {
			return nil
		}
		return c.tcpNode()
	default:
		return c.group.Node(p)
	}
}

// Applier returns process p's state machine applier: apply results,
// read-your-writes waits (Applier.Await) and canonical state digests. It
// returns nil without WithStateMachine, for remote TCP peers, and for
// crashed real-time processes.
func (c *Cluster) Applier(p int) *Applier {
	if p < 0 || p >= c.size() {
		return nil
	}
	switch {
	case c.sim != nil:
		return c.sim.Applier(ProcessID(p))
	case c.hub != nil:
		if p != int(c.self) {
			return nil
		}
		return c.tcpNode().Applier()
	default:
		node := c.group.Node(p)
		if node == nil {
			return nil
		}
		return node.Applier()
	}
}

// Obs returns process p's observability recorder (latency histograms and
// the sampled lifecycle trace). It returns nil on the real-time drivers
// without WithObservability, for remote TCP peers, and for out-of-range
// indexes; the simulated driver always records. Recorders survive
// Crash/Restart, accumulating across incarnations.
func (c *Cluster) Obs(p int) *ObsRecorder {
	if p < 0 || p >= c.size() {
		return nil
	}
	switch {
	case c.sim != nil:
		return c.sim.Obs(ProcessID(p))
	case c.hub != nil:
		if p != int(c.self) {
			return nil
		}
		return c.tcpOpts.Obs
	default:
		return c.group.Obs(p)
	}
}

// simObsConfig unwraps the optional observability config for the
// simulated driver (which always records; nil means defaults).
func simObsConfig(cfg *obs.Config) obs.Config {
	if cfg == nil {
		return obs.Config{}
	}
	return *cfg
}

// Sim returns the underlying simulated cluster (nil on real-time
// drivers) for scheduled workloads, fault injection and virtual-time
// control.
func (c *Cluster) Sim() *SimCluster { return c.sim }

// Close shuts the cluster down. Delivery streams drain what is buffered
// and then close. Close is idempotent.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()

	switch {
	case c.sim != nil:
		c.sim.Close()
		return nil
	case c.hub != nil:
		err := c.tcpNode().Close()
		c.wg.Wait() // every bridge drains its node's stream first
		c.hub.Close()
		return err
	default:
		c.group.Close()
		return nil
	}
}

// DefaultConfig returns the protocol tunables used in the paper's
// evaluation for a group of n processes.
func DefaultConfig(n int) Config { return engine.DefaultConfig(n) }

// DefaultCostModel returns the calibrated simulated-hardware model.
func DefaultCostModel() CostModel { return netsim.DefaultModel() }
