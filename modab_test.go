package modab_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"modab"
)

// TestFacadeQuickstart exercises the package doc's quick-start path:
// New, Deliveries, context-aware Abcast, Stats, Close.
func TestFacadeQuickstart(t *testing.T) {
	for _, stk := range []modab.Stack{modab.Modular, modab.Monolithic} {
		stk := stk
		t.Run(stk.String(), func(t *testing.T) {
			cluster, err := modab.New(3, stk)
			if err != nil {
				t.Fatal(err)
			}
			defer cluster.Close()
			if cluster.N() != 3 || cluster.Stack() != stk {
				t.Fatalf("N=%d Stack=%v", cluster.N(), cluster.Stack())
			}

			sub := cluster.Deliveries()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			for p := 0; p < 3; p++ {
				if _, err := cluster.Abcast(ctx, p, []byte{byte(p)}); err != nil {
					t.Fatal(err)
				}
			}
			// 3 messages adelivered at 3 processes each.
			got := make(map[modab.ProcessID][]modab.MsgID)
			timeout := time.After(15 * time.Second)
			for seen := 0; seen < 9; seen++ {
				select {
				case ev := <-sub.C():
					got[ev.P] = append(got[ev.P], ev.D.Msg.ID)
				case <-timeout:
					t.Fatalf("stream delivered %d of 9", seen)
				}
			}
			for p := modab.ProcessID(1); p < 3; p++ {
				for i := range got[0] {
					if got[p][i] != got[0][i] {
						t.Fatalf("order differs at %d", i)
					}
				}
			}
			st := cluster.Stats()
			if st.Total.ADeliver != 9 || st.N != 3 {
				t.Fatalf("stats: %+v", st.Total)
			}
		})
	}
}

// TestFacadeSimulation runs the simulated driver through the same
// surface: Abcast advances virtual time, Deliveries streams events,
// Stats reads uniformly.
func TestFacadeSimulation(t *testing.T) {
	for _, stk := range []modab.Stack{modab.Modular, modab.Monolithic} {
		cluster, err := modab.New(3, stk, modab.WithSimulation(1))
		if err != nil {
			t.Fatal(err)
		}
		sub := cluster.Deliveries(modab.StreamBuffer(32))
		ctx := context.Background()
		if _, err := cluster.Abcast(ctx, 0, []byte("x")); err != nil {
			t.Fatalf("%s: %v", stk, err)
		}
		if cluster.Sim() == nil {
			t.Fatal("Sim() nil on simulated driver")
		}
		cluster.Sim().RunIdle(5 * time.Second)
		if st := cluster.Stats(); st.Total.ADeliver != 3 {
			t.Fatalf("%s: ADeliver=%d, want 3", stk, st.Total.ADeliver)
		}
		if err := cluster.Close(); err != nil {
			t.Fatal(err)
		}
		streamed := 0
		for range sub.C() {
			streamed++
		}
		if streamed != 3 {
			t.Fatalf("%s: streamed %d of 3", stk, streamed)
		}
	}
}

// TestFacadeSimulationBlockingAbcast fills the window and checks that the
// blocking Abcast drives virtual time forward until admitted.
func TestFacadeSimulationBlockingAbcast(t *testing.T) {
	cfg := modab.DefaultConfig(3)
	cfg.Window = 1
	cluster, err := modab.New(3, modab.Monolithic,
		modab.WithSimulation(4), modab.WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()
	for j := 0; j < 5; j++ {
		if _, err := cluster.Abcast(ctx, 0, []byte{byte(j)}); err != nil {
			t.Fatalf("abcast %d: %v", j, err)
		}
	}
	// A full window plus a canceled context surfaces the context error.
	if _, err := cluster.TryAbcast(0, []byte("fill")); err != nil && !errors.Is(err, modab.ErrFlowControl) {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	for {
		_, err := cluster.TryAbcast(0, []byte("fill"))
		if errors.Is(err, modab.ErrFlowControl) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cluster.Abcast(canceled, 0, []byte("blocked")); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestFacadeOptionValidation checks option-combination errors.
func TestFacadeOptionValidation(t *testing.T) {
	if _, err := modab.New(3, modab.Modular,
		modab.WithTransportTCP([]string{"a", "b", "c"}, 0),
		modab.WithSimulation(1)); err == nil {
		t.Error("accepted TCP+simulation")
	}
	if _, err := modab.New(2, modab.Modular,
		modab.WithTransportTCP([]string{"a", "b", "c"}, 0)); err == nil {
		t.Error("accepted n != len(addrs)")
	}
	if _, err := modab.New(3, modab.Modular,
		modab.WithTransportTCP([]string{"a", "b"}, 5)); err == nil {
		t.Error("accepted out-of-range self")
	}
	if _, err := modab.New(3, modab.Modular, modab.WithDeliveryBuffer(0)); err == nil {
		t.Error("accepted zero delivery buffer")
	}
	if _, err := modab.New(0, modab.Modular); err == nil {
		t.Error("accepted empty group")
	}
}

// TestFacadeTCPNode drives a single-process TCP cluster through the
// facade.
func TestFacadeTCPNode(t *testing.T) {
	cluster, err := modab.New(1, modab.Monolithic,
		modab.WithTransportTCP([]string{"127.0.0.1:0"}, 0))
	if err != nil {
		t.Fatal(err)
	}
	sub := cluster.Deliveries()
	if _, err := cluster.Abcast(context.Background(), 0, []byte("solo")); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-sub.C():
		if string(ev.D.Msg.Body) != "solo" || ev.P != 0 {
			t.Fatalf("event: %+v", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no delivery streamed")
	}
	if _, err := cluster.Abcast(context.Background(), 1, nil); !errors.Is(err, modab.ErrNotLocal) {
		t.Fatalf("remote submit: %v", err)
	}
	if err := cluster.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-sub.C(); ok {
		t.Fatal("stream open after close")
	}
	// Subscriber after close: immediately closed channel.
	if _, ok := <-cluster.Deliveries().C(); ok {
		t.Fatal("post-close subscription yielded a value")
	}
}

// TestFacadeOnDeliverAdapter checks the callback option rides the stream.
func TestFacadeOnDeliverAdapter(t *testing.T) {
	var mu sync.Mutex
	var events []modab.Event
	cluster, err := modab.New(3, modab.Modular, modab.WithOnDeliver(func(ev modab.Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if _, err := cluster.Abcast(context.Background(), 1, []byte("cb")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		mu.Lock()
		n := len(events)
		mu.Unlock()
		if n == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("callback saw %d of 3", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWithPipelining drives a pipelined modular cluster end to end on
// the simulated driver and checks both the ordering contract and the
// observability: the configured window must actually be reached.
func TestWithPipelining(t *testing.T) {
	cluster, err := modab.New(3, modab.Modular,
		modab.WithSimulation(7), modab.WithPipelining(4))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	sim := cluster.Sim()
	for i := 0; i < 40; i++ {
		p := modab.ProcessID(i % 3)
		sim.Abcast(p, time.Duration(i)*time.Millisecond, []byte{byte(i)}, nil)
	}
	sim.Run(10 * time.Second)
	st := cluster.Stats()
	if st.Total.ADeliver != 3*40 {
		t.Fatalf("delivered %d of %d", st.Total.ADeliver, 3*40)
	}
	if st.Total.PipelineDepthObserved < 2 {
		t.Fatalf("pipeline depth observed %d, want >= 2", st.Total.PipelineDepthObserved)
	}
	if _, err := modab.New(3, modab.Modular, modab.WithPipelining(0)); err == nil {
		t.Fatal("WithPipelining(0) accepted")
	}
}

func TestDefaultsExposed(t *testing.T) {
	cfg := modab.DefaultConfig(3)
	if cfg.N != 3 || cfg.Window < 1 {
		t.Fatalf("config: %+v", cfg)
	}
	model := modab.DefaultCostModel()
	if model.BandwidthBytesPerSec <= 0 {
		t.Fatalf("model: %+v", model)
	}
}

// TestBatchingOptionValidation covers WithBatching's argument contract.
func TestBatchingOptionValidation(t *testing.T) {
	if _, err := modab.New(3, modab.Modular, modab.WithBatching(0, 0, time.Millisecond)); err == nil {
		t.Fatal("WithBatching(0, ...) accepted")
	}
	if _, err := modab.New(3, modab.Modular, modab.WithBatching(4, 0, 0)); err == nil {
		t.Fatal("WithBatching without flush delay accepted")
	}
	if _, err := modab.New(3, modab.Modular, modab.WithBatching(4, -1, time.Millisecond)); err == nil {
		t.Fatal("WithBatching with negative byte cap accepted")
	}
}

// TestFacadeBatching runs both stacks over the in-memory driver with
// sender-side batching and checks that everything is still delivered,
// in order, with batches actually forming.
func TestFacadeBatching(t *testing.T) {
	for _, stk := range []modab.Stack{modab.Modular, modab.Monolithic} {
		stk := stk
		t.Run(stk.String(), func(t *testing.T) {
			cluster, err := modab.New(3, stk,
				modab.WithBatching(8, 0, time.Millisecond))
			if err != nil {
				t.Fatal(err)
			}
			defer cluster.Close()
			sub := cluster.Deliveries(modab.StreamBuffer(512))
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			const perProc = 20
			for i := 0; i < perProc; i++ {
				for p := 0; p < 3; p++ {
					if _, err := cluster.Abcast(ctx, p, []byte{byte(p), byte(i)}); err != nil {
						t.Fatalf("abcast p%d #%d: %v", p, i, err)
					}
				}
			}
			// Every process adelivers all 60 messages.
			perDeliverer := make(map[modab.ProcessID][]modab.MsgID)
			for ev := range sub.C() {
				perDeliverer[ev.P] = append(perDeliverer[ev.P], ev.D.Msg.ID)
				done := 0
				for _, ids := range perDeliverer {
					if len(ids) == 3*perProc {
						done++
					}
				}
				if done == 3 {
					break
				}
			}
			for p := 1; p < 3; p++ {
				for i, id := range perDeliverer[modab.ProcessID(p)] {
					if id != perDeliverer[0][i] {
						t.Fatalf("delivery order diverges at %d on p%d", i, p+1)
					}
				}
			}
			tot := cluster.Stats().Total
			if tot.SenderBatches == 0 {
				t.Fatal("no sender-side batches formed")
			}
			if tot.MsgsPerSenderBatch() <= 1 {
				t.Fatalf("msgs/batch = %.2f, batching never amortized", tot.MsgsPerSenderBatch())
			}
		})
	}
}

// TestBatchingAgeTriggerSimulatedTime drives the flush timer in virtual
// time: an undersized batch must be sealed MaxDelay after its first
// message, on both stacks, deterministically.
func TestBatchingAgeTriggerSimulatedTime(t *testing.T) {
	for _, stk := range []modab.Stack{modab.Modular, modab.Monolithic} {
		stk := stk
		t.Run(stk.String(), func(t *testing.T) {
			cluster, err := modab.New(3, stk,
				modab.WithSimulation(7),
				modab.WithBatching(100, 0, 2*time.Millisecond))
			if err != nil {
				t.Fatal(err)
			}
			defer cluster.Close()
			// Three messages: far below MaxMsgs, so only the age trigger
			// can ever diffuse them.
			for i := 0; i < 3; i++ {
				if _, err := cluster.TryAbcast(0, []byte{byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			sim := cluster.Sim()
			sim.RunIdle(time.Second)
			for p := 0; p < 3; p++ {
				if got := cluster.Counters(p).ADeliver; got != 3 {
					t.Fatalf("p%d adelivered %d of 3", p+1, got)
				}
			}
			snap := cluster.Counters(0)
			if snap.SenderBatches != 1 || snap.SenderBatchedMsgs != 3 {
				t.Fatalf("age trigger sealed %d batches with %d msgs, want 1 with 3",
					snap.SenderBatches, snap.SenderBatchedMsgs)
			}
		})
	}
}
