package modab_test

import (
	"sync"
	"testing"
	"time"

	"modab"
)

// TestPublicAPIQuickstart exercises the README's quickstart path.
func TestPublicAPIQuickstart(t *testing.T) {
	var mu sync.Mutex
	got := make(map[modab.ProcessID][]modab.MsgID)
	group, err := modab.NewLocalGroup(3, modab.Monolithic, func(p modab.ProcessID, d modab.Delivery) {
		mu.Lock()
		got[p] = append(got[p], d.Msg.ID)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer group.Close()

	for p := 0; p < group.N(); p++ {
		if _, err := group.Abcast(p, []byte("hello")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		done := len(got[0]) == 3 && len(got[1]) == 3 && len(got[2]) == 3
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timeout")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for p := modab.ProcessID(1); p < 3; p++ {
		for i := range got[0] {
			if got[p][i] != got[0][i] {
				t.Fatalf("order differs at %d", i)
			}
		}
	}
}

// TestPublicSimAPI runs a small simulated comparison through the façade.
func TestPublicSimAPI(t *testing.T) {
	for _, stk := range []modab.Stack{modab.Modular, modab.Monolithic} {
		delivered := 0
		sim, err := modab.NewSimCluster(modab.SimOptions{
			N:     3,
			Stack: stk,
			Seed:  1,
			OnDeliver: func(_ modab.ProcessID, _ modab.Delivery, _ time.Duration) {
				delivered++
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		sim.Abcast(0, 0, []byte("x"), nil)
		sim.Run(time.Second)
		if delivered != 3 {
			t.Fatalf("%s: delivered %d, want 3", stk, delivered)
		}
	}
}

func TestDefaultsExposed(t *testing.T) {
	cfg := modab.DefaultConfig(3)
	if cfg.N != 3 || cfg.Window < 1 {
		t.Fatalf("config: %+v", cfg)
	}
	model := modab.DefaultCostModel()
	if model.BandwidthBytesPerSec <= 0 {
		t.Fatalf("model: %+v", model)
	}
}
