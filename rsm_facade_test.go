package modab_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"modab"
)

// awaitResult submits one command at p and blocks until the local
// applier has applied it, returning the apply result (read-your-writes).
func awaitResult(t *testing.T, ctx context.Context, c *modab.Cluster, p int, cmd []byte) []byte {
	t.Helper()
	id, err := c.Abcast(ctx, p, cmd)
	if err != nil {
		t.Fatalf("abcast at p%d: %v", p+1, err)
	}
	select {
	case res := <-c.Applier(p).Await(id):
		return res
	case <-time.After(20 * time.Second):
		t.Fatalf("timeout waiting for %s to apply at p%d", id, p+1)
		return nil
	}
}

// TestKVFacadeGroup drives the replicated KV end to end through the
// facade on the real-time group driver with file-backed durability:
// read-your-writes via Await, CAS semantics, snapshotting to disk, a
// crash/restart that recovers through the snapshot store, and final
// state digest equality across all replicas.
func TestKVFacadeGroup(t *testing.T) {
	dir := t.TempDir()
	cluster, err := modab.New(3, modab.Monolithic,
		modab.WithStateMachine(func() modab.StateMachine { return modab.NewKV() }, 4),
		modab.WithDurability(dir, modab.SyncNone),
		modab.WithFailureDetector(10*time.Millisecond, 80*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Read-your-writes: a put acknowledged by Await is visible to an
	// immediately following get at the same process.
	if st, _ := modab.DecodeKVResult(awaitResult(t, ctx, cluster, 0, modab.KVPut([]byte("greet"), []byte("hello")))); st != modab.KVStatusOK {
		t.Fatalf("put status = %d, want OK", st)
	}
	st, val := modab.DecodeKVResult(awaitResult(t, ctx, cluster, 0, modab.KVGet([]byte("greet"))))
	if st != modab.KVStatusOK || string(val) != "hello" {
		t.Fatalf("get after put = (%d, %q), want (OK, hello)", st, val)
	}

	// CAS: wrong expectation fails and leaves the value; right one swaps.
	if st, _ := modab.DecodeKVResult(awaitResult(t, ctx, cluster, 1, modab.KVCAS([]byte("greet"), []byte("wrong"), []byte("x")))); st != modab.KVStatusCASFailed {
		t.Fatalf("CAS with wrong old value status = %d, want CASFailed", st)
	}
	if st, _ := modab.DecodeKVResult(awaitResult(t, ctx, cluster, 1, modab.KVCAS([]byte("greet"), []byte("hello"), []byte("world")))); st != modab.KVStatusOK {
		t.Fatalf("CAS with right old value status = %d, want OK", st)
	}

	// Delete and missing-key get.
	if st, _ := modab.DecodeKVResult(awaitResult(t, ctx, cluster, 2, modab.KVDelete([]byte("greet")))); st != modab.KVStatusOK {
		t.Fatalf("delete status = %d, want OK", st)
	}
	if st, _ := modab.DecodeKVResult(awaitResult(t, ctx, cluster, 2, modab.KVGet([]byte("greet")))); st != modab.KVStatusMissing {
		t.Fatalf("get after delete status = %d, want Missing", st)
	}

	// Load enough unique keys to cross several snapshot intervals, then
	// crash p2 and keep going so its peers snapshot past its watermark.
	for i := 0; i < 20; i++ {
		awaitResult(t, ctx, cluster, i%3, modab.KVPut([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%02d", i))))
	}
	if err := cluster.Crash(1); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	for i := 20; i < 40; i++ {
		awaitResult(t, ctx, cluster, 2*(i%2), modab.KVPut([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%02d", i))))
	}
	if err := cluster.Restart(1); err != nil {
		t.Fatalf("Restart: %v", err)
	}

	// One more write after the restart; once every replica has applied
	// it, total order says they all applied everything before it too.
	last, err := cluster.Abcast(ctx, 0, modab.KVPut([]byte("fin"), []byte("ish")))
	if err != nil {
		t.Fatalf("abcast: %v", err)
	}
	for p := 0; p < 3; p++ {
		select {
		case <-cluster.Applier(p).Await(last):
		case <-time.After(30 * time.Second):
			t.Fatalf("timeout waiting for final write at p%d", p+1)
		}
	}

	// Applied-state equivalence across all replicas, including the one
	// that recovered.
	want := cluster.Applier(0).StateDigest()
	if len(want) == 0 {
		t.Fatal("p1 produced an empty state digest")
	}
	for p := 1; p < 3; p++ {
		if !bytes.Equal(cluster.Applier(p).StateDigest(), want) {
			t.Errorf("p%d state digest differs from p1", p+1)
		}
	}

	snap := cluster.Counters(1)
	if snap.Recoveries != 1 {
		t.Errorf("restarted process Recoveries = %d, want 1", snap.Recoveries)
	}
	if live := cluster.Counters(0); live.SnapshotsTaken == 0 {
		t.Errorf("p1 took no snapshots: %+v", live)
	}

	// The snapshot store is real: .snap files on disk for every process.
	for p := 0; p < 3; p++ {
		matches, err := filepath.Glob(filepath.Join(dir, fmt.Sprintf("p%d", p), "snap", "*.snap"))
		if err != nil || len(matches) == 0 {
			t.Errorf("p%d has no snapshot files on disk (%v)", p+1, err)
		}
		for _, m := range matches {
			if fi, err := os.Stat(m); err != nil || fi.Size() == 0 {
				t.Errorf("snapshot file %s unreadable or empty", m)
			}
		}
	}
}

// TestKVFacadeValidation: WithStateMachine rejects a nil factory.
func TestKVFacadeValidation(t *testing.T) {
	if _, err := modab.New(3, modab.Modular, modab.WithStateMachine(nil, 4)); err == nil {
		t.Fatal("WithStateMachine(nil) succeeded")
	}
}
